#include "wm/story/serialize.hpp"

#include <stdexcept>

namespace wm::story {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

JsonValue to_json(const StoryGraph& graph) {
  JsonObject root;
  root["title"] = JsonValue(graph.title());
  root["start"] = JsonValue(static_cast<std::int64_t>(graph.start()));

  JsonArray segments;
  for (SegmentId id = 0; id < graph.segment_count(); ++id) {
    const Segment& seg = graph.segment(id);
    JsonObject entry;
    entry["name"] = JsonValue(seg.name);
    entry["duration_s"] = JsonValue(seg.duration.to_seconds());
    entry["bitrate_kbps"] = JsonValue(static_cast<std::int64_t>(seg.bitrate_kbps));
    entry["is_ending"] = JsonValue(seg.is_ending);
    if (seg.has_choice()) {
      const ChoicePoint& cp = *seg.choice;
      JsonObject choice;
      choice["prompt"] = JsonValue(cp.prompt);
      choice["default_label"] = JsonValue(cp.default_label);
      choice["non_default_label"] = JsonValue(cp.non_default_label);
      choice["default_next"] =
          JsonValue(static_cast<std::int64_t>(cp.default_next));
      choice["non_default_next"] =
          JsonValue(static_cast<std::int64_t>(cp.non_default_next));
      choice["window_s"] = JsonValue(cp.window.to_seconds());
      entry["choice"] = JsonValue(std::move(choice));
    } else if (!seg.is_ending) {
      entry["next"] = JsonValue(static_cast<std::int64_t>(seg.next));
    }
    segments.emplace_back(std::move(entry));
  }
  root["segments"] = JsonValue(std::move(segments));
  return JsonValue(std::move(root));
}

std::string to_json_text(const StoryGraph& graph) { return to_json(graph).dump(2); }

namespace {

SegmentId read_segment_id(const JsonValue& value, std::size_t segment_count,
                          const char* field) {
  const std::int64_t raw = value.as_int();
  if (raw < 0 || static_cast<std::size_t>(raw) >= segment_count) {
    throw std::runtime_error(std::string("story from_json: field '") + field +
                             "' references segment " + std::to_string(raw) +
                             " outside the graph");
  }
  return static_cast<SegmentId>(raw);
}

}  // namespace

StoryGraph from_json(const JsonValue& document) {
  const std::string title = document.at("title").as_string();
  const JsonArray& entries = document.at("segments").as_array();
  if (entries.empty()) {
    throw std::runtime_error("story from_json: no segments");
  }

  std::vector<Segment> segments;
  segments.reserve(entries.size());
  for (const JsonValue& entry : entries) {
    Segment seg;
    seg.name = entry.at("name").as_string();
    seg.duration = util::Duration::from_seconds(entry.at("duration_s").as_double());
    seg.bitrate_kbps =
        static_cast<std::uint32_t>(entry.at("bitrate_kbps").as_int());
    seg.is_ending = entry.at("is_ending").as_bool();
    if (entry.contains("choice")) {
      const JsonValue& choice = entry.at("choice");
      ChoicePoint cp;
      cp.prompt = choice.at("prompt").as_string();
      cp.default_label = choice.at("default_label").as_string();
      cp.non_default_label = choice.at("non_default_label").as_string();
      cp.default_next =
          read_segment_id(choice.at("default_next"), entries.size(), "default_next");
      cp.non_default_next = read_segment_id(choice.at("non_default_next"),
                                            entries.size(), "non_default_next");
      cp.window = util::Duration::from_seconds(choice.at("window_s").as_double());
      seg.choice = std::move(cp);
    } else if (entry.contains("next")) {
      seg.next = read_segment_id(entry.at("next"), entries.size(), "next");
    }
    segments.push_back(std::move(seg));
  }

  const SegmentId start =
      read_segment_id(document.at("start"), segments.size(), "start");
  return StoryGraph(title, start, std::move(segments));
}

StoryGraph from_json_text(const std::string& text) {
  return from_json(JsonValue::parse(text));
}

}  // namespace wm::story
