#include "wm/monitor/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "wm/net/flow.hpp"
#include "wm/util/spsc_ring.hpp"
#include "wm/util/thread_annotations.hpp"

namespace wm::monitor {

namespace {

constexpr std::int64_t kNoTime = std::numeric_limits<std::int64_t>::min();
/// Poll slice for a shard worker waiting on its rings. The merge loop
/// cannot park on one ring while watching M of them, so it polls; a
/// slice this short is invisible next to merge_wait (default 20ms) and
/// costs nothing once traffic flows (the loop only sleeps when every
/// staged buffer is empty or a barrier is open).
constexpr auto kPollSlice = std::chrono::microseconds(100);
constexpr std::int64_t kPollSliceNanos = 100 * 1000;

}  // namespace

std::string FleetStats::to_string() const {
  std::ostringstream out;
  out << "shards=" << shards.size() << " packets=" << packets
      << " unroutable=" << packets_unroutable
      << " merge_deferrals=" << merge_deferrals
      << " backpressure_waits=" << backpressure_waits << " | "
      << totals.to_string();
  return out.str();
}

// --- OrderingCollector ----------------------------------------------------

namespace {

/// An event copied out of a shard callback so it can outlive it.
struct OwnedEvent {
  enum class Kind : std::uint8_t { kQuestion, kChoice, kEvicted, kGap };
  Kind kind = Kind::kQuestion;
  std::int64_t at_nanos = 0;  // capture-time sort key
  std::size_t shard = 0;
  std::uint64_t seq = 0;  // global arrival tiebreak
  std::string client;
  core::InferredQuestion question;
  std::uint16_t record_length = 0;
  bool final_answer = false;
  util::SimTime at;
  engine::ViewerEvictedEvent::Reason reason =
      engine::ViewerEvictedEvent::Reason::kIdle;
  std::size_t questions_emitted = 0;
  core::GapSpan gap;
};

struct OwnedEventOrder {
  bool operator()(const OwnedEvent& a, const OwnedEvent& b) const {
    if (a.at_nanos != b.at_nanos) return a.at_nanos < b.at_nanos;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.seq < b.seq;
  }
};

}  // namespace

struct OrderingCollector::Impl {
  /// Per-shard facade over deliver(): copies events out of the shard
  /// callback, stamps the shard id, and hands them to the merge buffer
  /// under the collector mutex — callable from any worker thread.
  // wm-lint: sink(threadsafe): every deliver() takes Impl::mutex.
  class ShardSink final : public engine::EventSink {
   public:
    ShardSink(Impl* impl, std::size_t shard) : impl_(impl), shard_(shard) {}

    void on_question_opened(const engine::QuestionOpenedEvent& event) override {
      OwnedEvent owned;
      owned.kind = OwnedEvent::Kind::kQuestion;
      owned.at_nanos = event.question.question_time.nanos();
      owned.client = std::string(event.client);
      owned.question = event.question;
      owned.record_length = event.record_length;
      impl_->deliver(shard_, std::move(owned));
    }
    void on_choice_inferred(const engine::ChoiceInferredEvent& event) override {
      OwnedEvent owned;
      owned.kind = OwnedEvent::Kind::kChoice;
      owned.at_nanos = event.at.nanos();
      owned.client = std::string(event.client);
      owned.question = event.question;
      owned.record_length = event.record_length;
      owned.final_answer = event.final;
      owned.at = event.at;
      impl_->deliver(shard_, std::move(owned));
    }
    void on_viewer_evicted(const engine::ViewerEvictedEvent& event) override {
      OwnedEvent owned;
      owned.kind = OwnedEvent::Kind::kEvicted;
      owned.at_nanos = event.at.nanos();
      owned.client = std::string(event.client);
      owned.at = event.at;
      owned.reason = event.reason;
      owned.questions_emitted = event.questions_emitted;
      impl_->deliver(shard_, std::move(owned));
    }
    void on_gap_observed(const engine::GapObservedEvent& event) override {
      OwnedEvent owned;
      owned.kind = OwnedEvent::Kind::kGap;
      owned.at_nanos = event.gap.at.nanos();
      owned.client = std::string(event.client);
      owned.gap = event.gap;
      impl_->deliver(shard_, std::move(owned));
    }

   private:
    Impl* impl_;
    std::size_t shard_;
  };

  Impl(std::size_t shards, engine::EventSink& downstream_in,
       util::Duration slack_in)
      : downstream(downstream_in),
        slack(slack_in.total_nanos()),
        watermarks(shards == 0 ? 1 : shards, kNoTime) {
    sinks.reserve(watermarks.size());
    for (std::size_t i = 0; i < watermarks.size(); ++i) {
      sinks.push_back(std::make_unique<ShardSink>(this, i));
    }
  }

  void deliver(std::size_t shard, OwnedEvent&& event) WM_EXCLUDES(mutex) {
    const util::LockGuard lock(mutex);
    event.shard = shard;
    event.seq = next_seq++;
    buffer.insert(std::move(event));
  }

  void watermark(std::size_t shard, std::int64_t frontier)
      WM_EXCLUDES(mutex) {
    const util::LockGuard lock(mutex);
    if (shard >= watermarks.size()) return;
    watermarks[shard] = std::max(watermarks[shard], frontier);
    std::int64_t barrier = std::numeric_limits<std::int64_t>::max();
    for (const std::int64_t mark : watermarks) barrier = std::min(barrier, mark);
    // No release until every shard has reported at least once.
    if (barrier == kNoTime) return;
    // The slack covers timer emissions trailing a shard's feed
    // frontier: the wheel fires deadlines strictly before the frontier
    // tick, so events up to one tick behind it are still possible.
    if (barrier > kNoTime + slack) barrier -= slack;
    release(barrier);
  }

  void flush() WM_EXCLUDES(mutex) {
    const util::LockGuard lock(mutex);
    release(std::numeric_limits<std::int64_t>::max());
  }

  /// Forward every buffered event with time <= barrier, oldest first.
  /// Caller holds the lock; the downstream sink is thus called
  /// serially, as the contract promises.
  void release(std::int64_t barrier) WM_REQUIRES(mutex) {
    while (!buffer.empty() && buffer.begin()->at_nanos <= barrier) {
      forward(*buffer.begin());
      buffer.erase(buffer.begin());
    }
  }

  /// Holding the lock across the downstream call *is* the contract:
  /// it serializes on_* callbacks for sinks that are not thread-safe.
  void forward(const OwnedEvent& event) WM_REQUIRES(mutex) {
    switch (event.kind) {
      case OwnedEvent::Kind::kQuestion: {
        engine::QuestionOpenedEvent out;
        out.client = event.client;
        out.question = event.question;
        out.record_length = event.record_length;
        downstream.on_question_opened(out);
        break;
      }
      case OwnedEvent::Kind::kChoice: {
        engine::ChoiceInferredEvent out;
        out.client = event.client;
        out.question = event.question;
        out.record_length = event.record_length;
        out.at = event.at;
        out.final = event.final_answer;
        downstream.on_choice_inferred(out);
        break;
      }
      case OwnedEvent::Kind::kEvicted: {
        engine::ViewerEvictedEvent out;
        out.client = event.client;
        out.reason = event.reason;
        out.at = event.at;
        out.questions_emitted = event.questions_emitted;
        downstream.on_viewer_evicted(out);
        break;
      }
      case OwnedEvent::Kind::kGap: {
        engine::GapObservedEvent out;
        out.client = event.client;
        out.gap = event.gap;
        downstream.on_gap_observed(out);
        break;
      }
    }
  }

  engine::EventSink& downstream;
  const std::int64_t slack;
  // wm-lint: allow(mutex): collector merge point — one event per
  // question/choice/eviction, orders of magnitude rarer than packets.
  util::Mutex mutex;
  std::vector<std::int64_t> watermarks WM_GUARDED_BY(mutex);
  std::multiset<OwnedEvent, OwnedEventOrder> buffer WM_GUARDED_BY(mutex);
  std::uint64_t next_seq WM_GUARDED_BY(mutex) = 0;
  std::vector<std::unique_ptr<ShardSink>> sinks;
};

OrderingCollector::OrderingCollector(std::size_t shards,
                                     engine::EventSink& downstream,
                                     util::Duration slack)
    : impl_(std::make_unique<Impl>(shards, downstream, slack)) {}

OrderingCollector::~OrderingCollector() = default;

engine::EventSink& OrderingCollector::shard_sink(std::size_t shard) {
  return *impl_->sinks.at(shard);
}

void OrderingCollector::watermark(std::size_t shard,
                                  std::int64_t frontier_nanos) {
  impl_->watermark(shard, frontier_nanos);
}

void OrderingCollector::flush() { impl_->flush(); }

std::size_t OrderingCollector::pending() const {
  const util::LockGuard lock(impl_->mutex);
  return impl_->buffer.size();
}

// --- MonitorFleet ---------------------------------------------------------

struct MonitorFleet::Impl {
  /// Worker-side view of one (source, shard) ring: a staged batch plus
  /// the lower bound on what the source can still deliver.
  struct Lane {
    util::SpscRing<net::Packet>* ring = nullptr;
    std::vector<net::Packet> staged;
    std::size_t head = 0;
    std::size_t count = 0;
    /// Lower bound (nanos) on every future packet from this lane —
    /// valid because individual sources are time-ordered. Raised
    /// artificially when a merge barrier is deferred (see below).
    std::int64_t low_bound = kNoTime;
    bool exhausted = false;
    /// A trusted lane's emptiness blocks the merge barrier; a lane
    /// that went silent past merge_wait loses trust (and its blocking
    /// power) until it produces again.
    bool trusted = true;

    [[nodiscard]] bool has_staged() const { return head < count; }
    [[nodiscard]] std::int64_t head_nanos() const {
      return staged[head].timestamp.nanos();
    }
  };

  struct Shard {
    std::unique_ptr<ContinuousMonitor> monitor;
    std::thread worker;
    /// Last capture instant fed (written by the worker, read after
    /// join — the fleet-wide finish horizon).
    std::int64_t max_fed = kNoTime;
    /// Coarse live gauges for active_viewers()/memory_bytes(),
    /// refreshed by the worker every ~1k feeds.
    std::atomic<std::size_t> approx_viewers{0};
    std::atomic<std::size_t> approx_bytes{0};
  };

  Impl(const core::RecordClassifier& classifier_in, FleetConfig config_in,
       engine::EventSink* sink_in)
      : classifier(classifier_in), config(normalize(std::move(config_in))) {
    if (config.global_order && sink_in != nullptr) {
      // One wheel tick of slack: timer emissions may trail a shard's
      // feed frontier by up to a tick (deadline truncation).
      collector = std::make_unique<OrderingCollector>(
          config.shards, *sink_in, config.monitor.wheel.tick);
    }

    rings.resize(config.sources);
    for (auto& row : rings) {
      row.reserve(config.shards);
      for (std::size_t d = 0; d < config.shards; ++d) {
        row.push_back(
            std::make_unique<util::SpscRing<net::Packet>>(config.ring_capacity));
      }
    }

    shards = std::vector<Shard>(config.shards);
    for (std::size_t d = 0; d < config.shards; ++d) {
      engine::EventSink* shard_sink =
          collector != nullptr ? &collector->shard_sink(d) : sink_in;
      shards[d].monitor = std::make_unique<ContinuousMonitor>(
          classifier, shard_config(d), shard_sink);
    }
    for (std::size_t d = 0; d < config.shards; ++d) {
      shards[d].worker = std::thread([this, d] { worker_loop(d); });
    }
  }

  static FleetConfig normalize(FleetConfig config) {
    config.shards = std::max<std::size_t>(config.shards, 1);
    config.sources = std::max<std::size_t>(config.sources, 1);
    config.batch = std::max<std::size_t>(config.batch, 1);
    config.ring_capacity = std::max<std::size_t>(config.ring_capacity, 2);
    return config;
  }

  [[nodiscard]] MonitorConfig shard_config(std::size_t shard) const {
    MonitorConfig out = config.monitor;
    // The configured budget is fleet-wide; each shard enforces its
    // even split locally (shedding never synchronizes).
    if (out.max_total_bytes != 0) {
      out.max_total_bytes =
          std::max<std::size_t>(out.max_total_bytes / config.shards, 1);
    }
    if (out.metrics != nullptr) {
      out.metrics_rollup = out.metrics_scope;
      out.metrics_scope += ".shard[" + std::to_string(shard) + "]";
      out.metrics_stability = obs::Stability::kSharded;
    }
    return out;
  }

  // --- pump (one per source) --------------------------------------------

  std::size_t pump(engine::PacketSource& source, std::size_t slot) {
    engine::PacketBatch batch;
    std::vector<std::vector<net::Packet>> staging(config.shards);
    std::size_t routed = 0;
    std::uint64_t local_unroutable = 0;
    std::uint64_t local_backpressure = 0;

    for (;;) {
      const std::size_t got = source.read_batch(batch, config.batch);
      if (got == 0) break;
      net::Packet* slots = batch.mutable_slots();
      for (std::size_t i = 0; i < got; ++i) {
        const auto hash = net::viewer_shard_hash(batch[i]);
        std::size_t shard = 0;
        if (hash.has_value()) {
          shard = static_cast<std::size_t>(*hash % config.shards);
        } else {
          ++local_unroutable;  // unparseable frames all ride shard 0
        }
        if (slots != nullptr) {
          staging[shard].push_back(std::move(slots[i]));
        } else {
          staging[shard].push_back(batch[i]);  // borrowed batch: copy
        }
      }
      routed += got;
      bool aborted = false;
      for (std::size_t d = 0; d < config.shards; ++d) {
        std::vector<net::Packet>& out = staging[d];
        if (out.empty()) continue;
        util::SpscRing<net::Packet>& ring = *rings[slot][d];
        const std::size_t want = out.size();
        std::size_t done = ring.try_push_n(out.data(), want);
        if (done < want) {
          ++local_backpressure;
          done += ring.push_n(out.data() + done, want - done);
        }
        out.clear();
        if (done < want) {  // ring closed under us: fleet is aborting
          aborted = true;
          break;
        }
      }
      if (aborted) break;
    }

    for (std::size_t d = 0; d < config.shards; ++d) rings[slot][d]->close();
    packets.fetch_add(routed, std::memory_order_relaxed);
    unroutable.fetch_add(local_unroutable, std::memory_order_relaxed);
    backpressure.fetch_add(local_backpressure, std::memory_order_relaxed);
    sources_done.fetch_add(1, std::memory_order_release);
    return routed;
  }

  // --- worker (one per shard) -------------------------------------------

  void worker_loop(std::size_t shard) {
    if (config.sources == 1) {
      single_source_loop(shard);
    } else {
      merge_loop(shard);
    }
    publish_gauges(shard);
  }

  void feed_one(Shard& state, const net::Packet& packet) {
    state.monitor->feed(packet);
    state.max_fed = std::max(state.max_fed, packet.timestamp.nanos());
  }

  void publish_gauges(std::size_t shard) {
    Shard& state = shards[shard];
    state.approx_viewers.store(state.monitor->active_viewers(),
                               std::memory_order_relaxed);
    state.approx_bytes.store(state.monitor->memory_bytes(),
                             std::memory_order_relaxed);
  }

  /// One source: no merge needed — a plain blocking pop for the first
  /// packet, then batch drains, exactly like InjectableTap's consumer.
  void single_source_loop(std::size_t shard) {
    Shard& state = shards[shard];
    util::SpscRing<net::Packet>& ring = *rings[0][shard];
    std::vector<net::Packet> staged(config.batch);
    std::size_t feeds = 0;
    net::Packet first;
    while (ring.pop(first)) {
      feed_one(state, first);
      ++feeds;
      std::size_t got;
      while ((got = ring.try_pop_n(staged.data(), staged.size())) > 0) {
        for (std::size_t i = 0; i < got; ++i) feed_one(state, staged[i]);
        feeds += got;
        if ((feeds & 1023u) < got) publish_gauges(shard);
      }
      if (collector != nullptr) collector->watermark(shard, state.max_fed);
    }
    if (collector != nullptr) collector->watermark(shard, state.max_fed);
  }

  /// Refill an empty lane from its ring. Returns true when packets were
  /// staged. Sets `exhausted` once the ring is closed and drained.
  static bool refill(Lane& lane) {
    lane.head = 0;
    lane.count = lane.ring->try_pop_n(lane.staged.data(), lane.staged.size());
    if (lane.count == 0) {
      if (!lane.ring->closed()) return false;
      // close() happens after the final push; one refreshed retry
      // cannot miss it.
      lane.count = lane.ring->try_pop_n(lane.staged.data(), lane.staged.size());
      if (lane.count == 0) {
        lane.exhausted = true;
        return false;
      }
    }
    // The batch is time-ordered (the source is), so its last packet
    // bounds everything the lane can still deliver.
    lane.trusted = true;
    lane.low_bound = lane.staged[lane.count - 1].timestamp.nanos();
    return true;
  }

  /// M sources: K-way timestamp merge. Feed the globally oldest staged
  /// packet, but only once no open trusted lane could still deliver an
  /// older one; hold a blocked barrier at most merge_wait before
  /// setting the silent lanes aside (merge_deferrals).
  void merge_loop(std::size_t shard) {
    Shard& state = shards[shard];
    std::vector<Lane> lanes(config.sources);
    for (std::size_t s = 0; s < config.sources; ++s) {
      lanes[s].ring = rings[s][shard].get();
      lanes[s].staged.resize(config.batch);
    }
    const std::int64_t merge_wait = config.merge_wait.total_nanos();
    std::int64_t waited = 0;
    std::size_t feeds = 0;

    for (;;) {
      bool all_exhausted = true;
      for (Lane& lane : lanes) {
        if (lane.exhausted) continue;
        if (!lane.has_staged()) refill(lane);
        all_exhausted &= lane.exhausted;
      }

      // Oldest staged head wins; ties break toward the lowest source
      // slot so the merge is deterministic.
      std::size_t best = lanes.size();
      std::int64_t best_ts = std::numeric_limits<std::int64_t>::max();
      for (std::size_t s = 0; s < lanes.size(); ++s) {
        if (!lanes[s].has_staged()) continue;
        const std::int64_t ts = lanes[s].head_nanos();
        if (ts < best_ts) {
          best = s;
          best_ts = ts;
        }
      }

      if (best == lanes.size()) {
        if (all_exhausted) break;
        publish_frontier(shard, state, lanes);
        std::this_thread::sleep_for(kPollSlice);
        continue;
      }

      bool blocked = false;
      if (merge_wait > 0) {
        for (const Lane& lane : lanes) {
          if (!lane.exhausted && lane.trusted && !lane.has_staged() &&
              lane.low_bound < best_ts) {
            blocked = true;
            break;
          }
        }
      }

      if (!blocked) {
        Lane& lane = lanes[best];
        feed_one(state, lane.staged[lane.head]);
        ++lane.head;
        waited = 0;
        ++feeds;
        if ((feeds & 127u) == 0) publish_frontier(shard, state, lanes);
        if ((feeds & 1023u) == 0) publish_gauges(shard);
        continue;
      }

      if (waited >= merge_wait) {
        // The silent lanes have had their chance: stop letting them
        // hold the shard hostage. They re-earn trust (and blocking
        // power) the moment they produce again; until then we assume
        // nothing older than best_ts is coming from them. A straggler
        // that does arrive later is still fed — only cross-source
        // timer interleaving weakens, never per-viewer order (a
        // viewer's packets ride a single lane).
        deferrals.fetch_add(1, std::memory_order_relaxed);
        for (Lane& lane : lanes) {
          if (!lane.exhausted && lane.trusted && !lane.has_staged() &&
              lane.low_bound < best_ts) {
            lane.trusted = false;
            lane.low_bound = best_ts;
          }
        }
        waited = 0;
        continue;
      }
      publish_frontier(shard, state, lanes);
      std::this_thread::sleep_for(kPollSlice);
      waited += kPollSliceNanos;
    }
    if (collector != nullptr) collector->watermark(shard, state.max_fed);
  }

  /// Collector frontier: nothing this shard feeds from now on can be
  /// older than the minimum over its open lanes (staged head, else the
  /// lane's low bound). Exact absent merge deferrals; a deferral may
  /// let one straggler event slip the barrier (documented trade).
  static std::int64_t frontier(const std::vector<Lane>& lanes,
                               std::int64_t max_fed) {
    std::int64_t low = std::numeric_limits<std::int64_t>::max();
    bool any_open = false;
    for (const Lane& lane : lanes) {
      if (lane.exhausted) continue;
      any_open = true;
      low = std::min(low, lane.has_staged() ? lane.head_nanos() : lane.low_bound);
    }
    return any_open ? low : max_fed;
  }

  /// Publish the merge frontier to the ordering collector. The
  /// watermark promise ("no future event from this shard is older")
  /// must cover timer fires as well as packets: a pending evidence
  /// window or idle deadline inside a traffic gap would otherwise fire
  /// *behind* a frontier taken from the staged packet heads. Advancing
  /// the wheel to just under the frontier first fires exactly the
  /// timers the next feed would fire anyway (feed's advance is
  /// strictly-before its packet), so the event stream is unchanged —
  /// the deadlines just stop trailing the promise.
  void publish_frontier(std::size_t shard, Shard& state,
                        const std::vector<Lane>& lanes) {
    if (collector == nullptr) return;
    const std::int64_t mark = frontier(lanes, state.max_fed);
    if (mark > state.max_fed && mark != kNoTime) {
      state.monitor->advance_to(util::SimTime::from_nanos(mark - 1));
      state.max_fed = mark - 1;
    }
    collector->watermark(shard, mark);
  }

  // --- lifecycle --------------------------------------------------------

  [[nodiscard]] std::size_t take_slot_locked() WM_REQUIRES(attach_mutex) {
    if (finishing) {
      throw std::logic_error("MonitorFleet: attach/consume after finish()");
    }
    if (attached >= config.sources) {
      throw std::logic_error(
          "MonitorFleet: more sources than FleetConfig::sources");
    }
    return attached++;
  }

  std::size_t take_source_slot() WM_EXCLUDES(attach_mutex) {
    const util::LockGuard lock(attach_mutex);
    return take_slot_locked();
  }

  /// Claim a slot AND register the pump thread in one critical
  /// section. Taking the slot and emplacing the thread under separate
  /// lock acquisitions (as attach() once did) left a window where
  /// finish() could observe the slot as attached, see no pump to join,
  /// and close the rings while the pump thread was still being born.
  void attach_source(engine::PacketSource& source) WM_EXCLUDES(attach_mutex) {
    const util::LockGuard lock(attach_mutex);
    const std::size_t slot = take_slot_locked();
    pumps.emplace_back([this, &source, slot] { pump(source, slot); });
  }

  FleetStats finish() WM_EXCLUDES(finish_mutex, attach_mutex) {
    // finish_mutex serializes whole shutdowns: a second caller racing
    // the first used to read `stats` while the winner was still
    // writing it; now it blocks until the winner is done and returns
    // the completed stats. Ordering: finish_mutex before attach_mutex.
    const util::LockGuard finish_lock(finish_mutex);
    std::vector<std::thread> to_join;
    {
      const util::LockGuard lock(attach_mutex);
      if (finishing) return stats;
      finishing = true;
      to_join.swap(pumps);
    }
    // Join the pumps first: a pump owns the producer side of its rings
    // until its source ends (shutdown contract). Joining the swapped
    // local (not `pumps` unlocked) keeps attach()'s emplace ordered
    // against the join.
    for (std::thread& pump_thread : to_join) {
      if (pump_thread.joinable()) pump_thread.join();
    }
    // Close every ring — including slots never attached — so each
    // worker's lanes exhaust and the workers drain out.
    for (auto& row : rings) {
      for (auto& ring : row) ring->close();
    }
    for (Shard& shard : shards) {
      if (shard.worker.joinable()) shard.worker.join();
    }

    // Advance every shard to the fleet-wide last capture instant so
    // idle evictions fire exactly where a single monitor's would have
    // (its wheel saw the global maximum timestamp; each shard's only
    // saw its own traffic).
    std::int64_t horizon = kNoTime;
    for (const Shard& shard : shards) {
      horizon = std::max(horizon, shard.max_fed);
    }
    if (horizon != kNoTime) {
      for (Shard& shard : shards) {
        shard.monitor->advance_to(util::SimTime::from_nanos(horizon));
        if (collector != nullptr) {
          // advance_to may emit (window closes, idle evictions) — let
          // the collector release them before the shutdown flush.
          collector->watermark(shard_index(shard), horizon);
        }
      }
    }
    stats.shards.reserve(shards.size());
    for (Shard& shard : shards) {
      stats.shards.push_back(shard.monitor->finish());
    }
    if (collector != nullptr) collector->flush();

    for (const MonitorStats& s : stats.shards) accumulate(stats.totals, s);
    stats.packets = packets.load(std::memory_order_relaxed);
    stats.packets_unroutable = unroutable.load(std::memory_order_relaxed);
    stats.merge_deferrals = deferrals.load(std::memory_order_relaxed);
    stats.backpressure_waits = backpressure.load(std::memory_order_relaxed);
    return stats;
  }

  [[nodiscard]] std::size_t shard_index(const Shard& shard) const {
    return static_cast<std::size_t>(&shard - shards.data());
  }

  static void accumulate(MonitorStats& total, const MonitorStats& shard) {
    total.packets += shard.packets;
    total.client_records += shard.client_records;
    total.viewers_opened += shard.viewers_opened;
    total.viewers_evicted_idle += shard.viewers_evicted_idle;
    total.viewers_shed += shard.viewers_shed;
    total.questions_opened += shard.questions_opened;
    total.choices_inferred += shard.choices_inferred;
    total.overrides += shard.overrides;
    total.questions_synthesized += shard.questions_synthesized;
    total.gaps_observed += shard.gaps_observed;
    total.flows_swept += shard.flows_swept;
    total.timer_fires += shard.timer_fires;
    total.ceiling_violations += shard.ceiling_violations;
    // Sum of per-shard peaks: an upper bound on the simultaneous peak.
    total.peak_viewers += shard.peak_viewers;
    total.peak_memory_bytes += shard.peak_memory_bytes;
  }

  void abort_without_finish() WM_EXCLUDES(finish_mutex, attach_mutex) {
    const util::LockGuard finish_lock(finish_mutex);
    std::vector<std::thread> to_join;
    {
      const util::LockGuard lock(attach_mutex);
      if (finishing) return;  // finish() already ran
      finishing = true;
      to_join.swap(pumps);
    }
    for (std::thread& pump_thread : to_join) {
      if (pump_thread.joinable()) pump_thread.join();
    }
    for (auto& row : rings) {
      for (auto& ring : row) ring->close();
    }
    for (Shard& shard : shards) {
      if (shard.worker.joinable()) shard.worker.join();
    }
    // Monitors are destroyed un-finished: no shutdown events fire.
  }

  const core::RecordClassifier& classifier;
  const FleetConfig config;
  std::unique_ptr<OrderingCollector> collector;
  /// rings[source][shard]: producer = that source's pump, consumer =
  /// that shard's worker — strict SPSC per ring.
  std::vector<std::vector<std::unique_ptr<util::SpscRing<net::Packet>>>> rings;
  std::vector<Shard> shards;

  // wm-lint: allow(mutex): attach/finish lifecycle edges only — never
  // touched per packet.
  util::Mutex attach_mutex;  // attach/consume slot bookkeeping
  std::vector<std::thread> pumps WM_GUARDED_BY(attach_mutex);
  std::size_t attached WM_GUARDED_BY(attach_mutex) = 0;
  bool finishing WM_GUARDED_BY(attach_mutex) = false;

  // Serializes finish()/abort end to end (acquired before
  // attach_mutex); a losing caller blocks, then reads completed stats.
  // wm-lint: allow(mutex): taken once per fleet lifetime.
  util::Mutex finish_mutex;

  // Relaxed counters: pump-local tallies flushed once per source; the
  // pump joins in finish() provide the happens-before for reading
  // them into stats. sources_done is the exception — its release
  // fetch_add pairs with drained()'s acquire load so a true `drained`
  // implies the counter flushes above it are visible.
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> unroutable{0};
  std::atomic<std::uint64_t> deferrals{0};
  std::atomic<std::uint64_t> backpressure{0};
  std::atomic<std::size_t> sources_done{0};

  FleetStats stats WM_GUARDED_BY(finish_mutex);
};

MonitorFleet::MonitorFleet(const core::RecordClassifier& classifier,
                           FleetConfig config, engine::EventSink* sink)
    : impl_(std::make_unique<Impl>(classifier, std::move(config), sink)) {}

MonitorFleet::~MonitorFleet() {
  if (impl_ != nullptr) impl_->abort_without_finish();
}

void MonitorFleet::attach(engine::PacketSource& source) {
  impl_->attach_source(source);
}

std::size_t MonitorFleet::consume(engine::PacketSource& source) {
  const std::size_t slot = impl_->take_source_slot();
  return impl_->pump(source, slot);
}

bool MonitorFleet::drained() const {
  const util::LockGuard lock(impl_->attach_mutex);
  return impl_->sources_done.load(std::memory_order_acquire) >=
         impl_->attached;
}

FleetStats MonitorFleet::finish() { return impl_->finish(); }

std::size_t MonitorFleet::shard_count() const { return impl_->config.shards; }

std::size_t MonitorFleet::active_viewers() const {
  std::size_t total = 0;
  for (const Impl::Shard& shard : impl_->shards) {
    total += shard.approx_viewers.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t MonitorFleet::memory_bytes() const {
  std::size_t total = 0;
  for (const Impl::Shard& shard : impl_->shards) {
    total += shard.approx_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace wm::monitor
