#include "wm/monitor/workload.hpp"

#include <algorithm>
#include <utility>

#include "wm/net/checksum.hpp"
#include "wm/net/packet_builder.hpp"
#include "wm/tls/record.hpp"
#include "wm/util/rng.hpp"

namespace wm::monitor {

namespace {

tls::TlsSessionConfig effective_tls(const WorkloadConfig& config) {
  tls::TlsSessionConfig tls = config.tls;
  if (tls.sni.empty()) tls.sni = "ichnaea.netflix.com";
  return tls;
}

/// Override delay clamped so a type-2 never outlives its question's
/// slot (otherwise it would be attributed to the next question).
util::Duration effective_override_delay(const WorkloadConfig& config) {
  const std::int64_t spacing = config.question_spacing.total_nanos();
  const std::int64_t delay = config.override_delay.total_nanos();
  if (spacing > 1 && delay >= spacing) {
    return util::Duration::nanos(spacing - 1);
  }
  return config.override_delay;
}

/// RFC 1624 incremental checksum update for one changed 16-bit word.
void incremental_checksum_fix(std::uint8_t* checksum, std::uint16_t old_word,
                              std::uint16_t new_word) {
  std::uint32_t sum = static_cast<std::uint16_t>(
      ~((static_cast<std::uint16_t>(checksum[0]) << 8) | checksum[1]));
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  const std::uint16_t fixed = static_cast<std::uint16_t>(~sum);
  checksum[0] = static_cast<std::uint8_t>(fixed >> 8);
  checksum[1] = static_cast<std::uint8_t>(fixed & 0xff);
}

std::uint16_t word_at(const util::Bytes& data, std::size_t offset) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data[offset]) << 8) | data[offset + 1]);
}

/// XOR the low 24 bits of `session` into octets 1..3 of both IPv4
/// addresses and repair both checksums — every session becomes a
/// distinct flow between distinct endpoints while the template bytes
/// stay otherwise untouched.
void rewrite_ipv4_session(util::Bytes& data, std::uint32_t session) {
  constexpr std::size_t kIp = 14;
  if (data.size() < kIp + 20) return;
  if (data[12] != 0x08 || data[13] != 0x00) return;
  const std::size_t header_len = static_cast<std::size_t>(data[kIp] & 0x0f) * 4;
  if (header_len < 20 || data.size() < kIp + header_len) return;

  const std::uint8_t protocol = data[kIp + 9];
  std::size_t transport_checksum = 0;
  const std::size_t transport = kIp + header_len;
  if (protocol == 6 && data.size() >= transport + 18) {
    transport_checksum = transport + 16;
  }

  const std::uint8_t o1 = static_cast<std::uint8_t>(session >> 16);
  const std::uint8_t o2 = static_cast<std::uint8_t>(session >> 8);
  const std::uint8_t o3 = static_cast<std::uint8_t>(session);
  for (const std::size_t addr : {kIp + 12, kIp + 16}) {
    const std::uint16_t old_hi = word_at(data, addr);
    const std::uint16_t old_lo = word_at(data, addr + 2);
    data[addr + 1] ^= o1;
    data[addr + 2] ^= o2;
    data[addr + 3] ^= o3;
    if (transport_checksum != 0) {
      incremental_checksum_fix(data.data() + transport_checksum, old_hi,
                               word_at(data, addr));
      incremental_checksum_fix(data.data() + transport_checksum, old_lo,
                               word_at(data, addr + 2));
    }
  }

  data[kIp + 10] = 0;
  data[kIp + 11] = 0;
  const std::uint16_t ip_checksum =
      net::internet_checksum(util::BytesView(data.data() + kIp, header_len));
  data[kIp + 10] = static_cast<std::uint8_t>(ip_checksum >> 8);
  data[kIp + 11] = static_cast<std::uint8_t>(ip_checksum & 0xff);
}

}  // namespace

bool question_overridden(const WorkloadConfig& config, std::size_t q) {
  if (config.override_stride == 0) return false;
  return q % config.override_stride == 0;
}

std::vector<core::LabeledObservation> workload_calibration(
    const WorkloadConfig& config) {
  tls::TlsSession session(effective_tls(config), util::Rng(config.seed));
  std::vector<core::LabeledObservation> calibration;
  util::SimTime when = util::SimTime::from_seconds(0.0);
  const auto sample = [&](std::int64_t plaintext_signed,
                          core::RecordClass label) {
    if (plaintext_signed <= 0) return;
    const auto plaintext = static_cast<std::size_t>(plaintext_signed);
    for (const auto& record : session.seal_application_data(plaintext)) {
      core::LabeledObservation item;
      item.observation.timestamp = when;
      item.observation.record_length = record.length();
      item.observation.flow_sni = session.config().sni;
      item.label = label;
      calibration.push_back(std::move(item));
      when += util::Duration::millis(10);
    }
  };
  // A few samples per band so the adaptive guard sees the band width;
  // kOther examples bracket the JSON bands from both sides.
  for (const std::int64_t jitter : {-2, 0, 2}) {
    sample(static_cast<std::int64_t>(config.type1_plaintext) + jitter,
           core::RecordClass::kType1Json);
    sample(static_cast<std::int64_t>(config.type2_plaintext) + jitter,
           core::RecordClass::kType2Json);
    if (config.noise_plaintext != 0) {
      sample(static_cast<std::int64_t>(config.noise_plaintext) + jitter,
             core::RecordClass::kOther);
    }
  }
  sample(60, core::RecordClass::kOther);
  sample(4000, core::RecordClass::kOther);
  return calibration;
}

std::vector<net::Packet> make_session_template(const WorkloadConfig& config) {
  using util::Duration;
  using util::SimTime;
  tls::TlsSession session(effective_tls(config), util::Rng(config.seed));

  net::TcpEndpointConfig client;
  client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
  client.ip = net::Ipv4Address(10, 0, 0, 1);
  client.port = 51000;
  net::TcpEndpointConfig server = client;
  server.mac = *net::MacAddress::parse("02:00:00:00:00:02");
  server.ip = net::Ipv4Address(198, 51, 100, 9);
  server.port = 443;
  net::TcpConnectionBuilder conn(client, server);

  const auto send_client = [&](SimTime at, std::size_t plaintext) {
    conn.send(net::FlowDirection::kClientToServer, at,
              tls::serialize_records(session.seal_application_data(plaintext)));
  };

  SimTime t = SimTime::from_seconds(0.0);
  conn.handshake(t, Duration::millis(20));
  conn.send(net::FlowDirection::kClientToServer, t + Duration::millis(30),
            tls::serialize_records(session.client_hello_flight()));
  conn.send(net::FlowDirection::kServerToClient, t + Duration::millis(50),
            tls::serialize_records(session.server_hello_flight()));
  conn.send(net::FlowDirection::kClientToServer, t + Duration::millis(70),
            tls::serialize_records(session.client_finished_flight()));
  // A slab of server content so the flow looks like streaming, not a
  // bare control channel.
  conn.send(net::FlowDirection::kServerToClient, t + Duration::millis(100),
            tls::serialize_records(session.seal_application_data(
                std::size_t{6000})));

  const Duration override_delay = effective_override_delay(config);
  const SimTime first_question = t + Duration::millis(200);
  for (std::size_t q = 0; q < config.questions_per_session; ++q) {
    const SimTime anchor =
        first_question + config.question_spacing * static_cast<std::int64_t>(q);
    if (config.noise_plaintext != 0) {
      send_client(anchor - Duration::millis(40), config.noise_plaintext);
    }
    send_client(anchor, config.type1_plaintext);
    if (question_overridden(config, q)) {
      send_client(anchor + override_delay, config.type2_plaintext);
    }
  }

  const SimTime end =
      first_question +
      config.question_spacing *
          static_cast<std::int64_t>(config.questions_per_session);
  conn.close(end, Duration::millis(20));
  return conn.take_packets();
}

SyntheticFleetSource::SyntheticFleetSource(WorkloadConfig config)
    : config_(std::move(config)), template_(make_session_template(config_)) {
  if (config_.sessions == 0 || template_.empty()) return;
  util::SimTime last;
  for (const net::Packet& packet : template_) {
    last = std::max(last, packet.timestamp);
  }
  period_ = (last - util::SimTime()) + config_.lane_gap;
  lane_count_ = std::max<std::size_t>(config_.concurrency, 1);
  lane_count_ = std::min(lane_count_, config_.sessions);
  stagger_ = util::Duration::nanos(period_.total_nanos() /
                                   static_cast<std::int64_t>(lane_count_));
  lanes_.resize(lane_count_);
  for (std::size_t l = 0; l < lane_count_; ++l) {
    lanes_[l] = Lane{l, 0};
    push_lane(l);
  }
}

util::Duration SyntheticFleetSource::session_shift(std::size_t session) const {
  const std::size_t lane = session % lane_count_;
  const std::size_t round = session / lane_count_;
  return (config_.start - util::SimTime()) +
         period_ * static_cast<std::int64_t>(round) +
         stagger_ * static_cast<std::int64_t>(lane);
}

void SyntheticFleetSource::push_lane(std::size_t lane) {
  const Lane& state = lanes_[lane];
  const std::int64_t nanos =
      (template_[state.index].timestamp + session_shift(state.session)).nanos();
  heap_.push(HeapItem{nanos, lane});
}

bool SyntheticFleetSource::produce(net::Packet& slot) {
  if (heap_.empty()) return false;
  const std::size_t lane_index = heap_.top().lane;
  heap_.pop();
  Lane& lane = lanes_[lane_index];

  const net::Packet& base = template_[lane.index];
  slot.timestamp = base.timestamp + session_shift(lane.session);
  slot.original_length = base.original_length;
  slot.data.assign(base.data.begin(), base.data.end());
  rewrite_ipv4_session(slot.data,
                       static_cast<std::uint32_t>(lane.session) & 0xffffffu);
  ++emitted_;

  if (++lane.index == template_.size()) {
    lane.index = 0;
    lane.session += lane_count_;
    if (lane.session >= config_.sessions) return true;  // lane retired
  }
  push_lane(lane_index);
  return true;
}

std::optional<net::Packet> SyntheticFleetSource::next() {
  net::Packet packet;
  if (!produce(packet)) return std::nullopt;
  return packet;
}

std::size_t SyntheticFleetSource::read_batch(engine::PacketBatch& out,
                                             std::size_t max) {
  out.clear();
  std::size_t count = 0;
  net::Packet scratch;
  while (count < max && produce(scratch)) {
    // append(Packet&&) swaps buffers, so scratch re-acquires the
    // slot's previous capacity — the fill loop stops allocating once
    // the batch has warmed up.
    out.append(std::move(scratch));
    ++count;
  }
  return count;
}

}  // namespace wm::monitor
