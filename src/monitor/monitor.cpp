#include "wm/monitor/monitor.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "wm/net/flow.hpp"

namespace wm::monitor {

std::string MonitorStats::to_string() const {
  std::ostringstream out;
  out << "packets=" << packets << " client_records=" << client_records
      << " viewers=" << viewers_opened
      << " evicted_idle=" << viewers_evicted_idle
      << " shed=" << viewers_shed << " questions=" << questions_opened
      << " choices=" << choices_inferred << " overrides=" << overrides
      << " synthesized=" << questions_synthesized
      << " gaps=" << gaps_observed << " flows_swept=" << flows_swept
      << " timer_fires=" << timer_fires
      << " ceiling_violations=" << ceiling_violations
      << " peak_viewers=" << peak_viewers
      << " peak_mem=" << peak_memory_bytes;
  return out.str();
}

namespace {

constexpr std::uint32_t kNilIndex = 0xffffffffu;

// Timer payload: viewer slot in the high bits, timer kind in the low
// two. The global flow-sweep timer uses kNilIndex as its slot.
enum class TimerKind : std::uint64_t { kViewerIdle = 0, kWindow = 1, kFlowSweep = 2 };

std::uint64_t timer_data(std::uint32_t slot, TimerKind kind) {
  return (static_cast<std::uint64_t>(slot) << 2) |
         static_cast<std::uint64_t>(kind);
}

std::string client_key(const net::FlowKey& flow) {
  return flow.client.is_v6 ? flow.client.v6.to_string()
                           : flow.client.v4.to_string();
}

}  // namespace

// One viewer's decode state: O(1) regardless of session length — the
// running mirror of core::decode_choices' loop variables, not the
// observation log the batch collector keeps.
struct ViewerState {
  std::string client;
  util::SimTime last_activity;
  std::optional<util::SimTime> last_type1;   // duplicate suppression
  std::optional<util::SimTime> last_anchor;  // gap attribution boundary
  /// The at-most-one question whose evidence window is open.
  bool open = false;
  core::InferredQuestion question;
  std::uint16_t open_record_length = 0;
  /// Lifetime question ordinal (mirrors the batch per-viewer index).
  std::size_t question_seq = 0;
  util::TimerWheel::TimerId window_timer = util::TimerWheel::kInvalidTimer;
  util::TimerWheel::TimerId idle_timer = util::TimerWheel::kInvalidTimer;
  /// Bounded gap history (ring): enough to attribute loss to the next
  /// override; the oldest spans fall off first.
  std::vector<core::GapSpan> gaps;
  std::size_t gap_head = 0;
  std::size_t gap_count = 0;
  // Intrusive LRU by last_activity: head = oldest-idle = shed first.
  std::uint32_t lru_prev = kNilIndex;
  std::uint32_t lru_next = kNilIndex;
  bool in_use = false;

  [[nodiscard]] std::size_t dynamic_bytes() const {
    return client.capacity() + gaps.capacity() * sizeof(core::GapSpan);
  }
};

struct ContinuousMonitor::Impl {
  Impl(const core::RecordClassifier& classifier_in, MonitorConfig config_in,
       engine::EventSink* sink_in)
      : classifier(classifier_in),
        config(config_in),
        sink(sink_in),
        wheel(config.wheel),
        extractor(make_extractor_config(config)) {
    if (config.metrics != nullptr) {
      obs::Registry& m = *config.metrics;
      // Rollup stability is per counter: per-viewer / per-record
      // quantities sum to the same totals at any shard count (stable
      // rollups keep the flat "monitor.*" names byte-identical), while
      // sweep-cadence and split-budget quantities (shed, peaks, ceiling
      // hits, timer fires) vary with N and roll up as kSharded.
      const auto resolve = [&](const char* suffix, obs::Stability rollup_stab) {
        const std::string name = config.metrics_scope + suffix;
        if (config.metrics_rollup.empty()) {
          return m.counter(name, config.metrics_stability);
        }
        return m.counter(name, config.metrics_stability,
                         config.metrics_rollup + suffix, rollup_stab);
      };
      using obs::Stability;
      viewers_opened_c = resolve(".viewers.opened", Stability::kStable);
      viewers_idle_c = resolve(".viewers.evicted_idle", Stability::kStable);
      viewers_shed_c = resolve(".viewers.shed", Stability::kSharded);
      viewers_peak_c = resolve(".viewers.active.peak", Stability::kSharded);
      mem_peak_c = resolve(".mem.bytes.peak", Stability::kSharded);
      ceiling_c = resolve(".mem.ceiling_violations", Stability::kSharded);
      questions_c = resolve(".emit.questions", Stability::kStable);
      choices_c = resolve(".emit.choices", Stability::kStable);
      overrides_c = resolve(".emit.overrides", Stability::kStable);
      gaps_c = resolve(".gaps", Stability::kStable);
      sweeps_c = resolve(".flows.swept", Stability::kStable);
      timer_c = resolve(".timer.fires", Stability::kSharded);
      // Question-to-answer sim-time latency; bounded above by the
      // evidence window, so millisecond buckets up to 30s cover it.
      const std::vector<std::uint64_t> latency_bounds = {
          1, 10, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000};
      if (config.metrics_rollup.empty()) {
        emit_latency_h = m.histogram(config.metrics_scope + ".emit.latency_ms",
                                     latency_bounds, config.metrics_stability);
      } else {
        emit_latency_h = m.histogram(
            config.metrics_scope + ".emit.latency_ms", latency_bounds,
            config.metrics_stability,
            config.metrics_rollup + ".emit.latency_ms", Stability::kStable);
      }
    }
  }

  static tls::RecordStreamExtractor::Config make_extractor_config(
      const MonitorConfig& config) {
    tls::RecordStreamExtractor::Config out;
    out.retain_events = false;  // the monitor reacts, it does not archive
    out.idle_timeout = config.flow_idle_timeout;
    out.reassembly = config.reassembly;
    if (config.metrics != nullptr) {
      out.registry = config.metrics;
      out.metrics_scope = config.metrics_scope + ".extractor";
      out.metrics_stability = config.metrics_stability;
      if (!config.metrics_rollup.empty()) {
        out.metrics_rollup = config.metrics_rollup + ".extractor";
      }
    }
    return out;
  }

  // --- Viewer table ---------------------------------------------------

  std::uint32_t viewer_of(const std::string& key, util::SimTime now) {
    const auto it = index.find(key);
    if (it != index.end()) return it->second;

    std::uint32_t slot;
    if (free_head != kNilIndex) {
      slot = free_head;
      free_head = arena[slot].lru_next;
    } else {
      slot = static_cast<std::uint32_t>(arena.size());
      arena.emplace_back();
    }
    ViewerState& viewer = arena[slot];
    viewer = ViewerState{};
    viewer.client = key;
    viewer.last_activity = now;
    viewer.in_use = true;
    viewer.gaps.reserve(config.max_viewer_gaps);
    index.emplace(key, slot);
    lru_push_back(slot);
    dynamic_bytes += viewer.dynamic_bytes();
    ++active_count;
    ++stats.viewers_opened;
    obs::inc(viewers_opened_c);
    if (active_count > stats.peak_viewers) {
      obs::inc(viewers_peak_c, active_count - stats.peak_viewers);
      stats.peak_viewers = active_count;
    }
    if (config.viewer_idle_timeout != util::Duration{}) {
      viewer.idle_timer =
          wheel.schedule(now + config.viewer_idle_timeout,
                         timer_data(slot, TimerKind::kViewerIdle));
    }
    note_memory();
    enforce_budget(slot);
    return slot;
  }

  void lru_push_back(std::uint32_t slot) {
    ViewerState& viewer = arena[slot];
    viewer.lru_prev = lru_tail;
    viewer.lru_next = kNilIndex;
    if (lru_tail != kNilIndex) arena[lru_tail].lru_next = slot;
    lru_tail = slot;
    if (lru_head == kNilIndex) lru_head = slot;
  }

  void lru_unlink(std::uint32_t slot) {
    ViewerState& viewer = arena[slot];
    if (viewer.lru_prev != kNilIndex) arena[viewer.lru_prev].lru_next = viewer.lru_next;
    else lru_head = viewer.lru_next;
    if (viewer.lru_next != kNilIndex) arena[viewer.lru_next].lru_prev = viewer.lru_prev;
    else lru_tail = viewer.lru_prev;
    viewer.lru_prev = kNilIndex;
    viewer.lru_next = kNilIndex;
  }

  void lru_touch(std::uint32_t slot) {
    if (lru_tail == slot) return;
    lru_unlink(slot);
    lru_push_back(slot);
  }

  [[nodiscard]] std::size_t live_bytes() const {
    return active_count * sizeof(ViewerState) + dynamic_bytes +
           wheel.memory_bytes();
  }

  void note_memory() {
    const std::size_t bytes = live_bytes();
    if (bytes > stats.peak_memory_bytes) {
      obs::inc(mem_peak_c, bytes - stats.peak_memory_bytes);
      stats.peak_memory_bytes = bytes;
    }
  }

  /// Shed oldest-idle viewers until the budget holds. `protect` is the
  /// viewer being processed right now — never shed under its own feet.
  void enforce_budget(std::uint32_t protect) {
    if (config.max_total_bytes == 0) return;
    while (live_bytes() > config.max_total_bytes) {
      std::uint32_t victim = lru_head;
      if (victim == protect) victim = arena[victim].lru_next;
      if (victim == kNilIndex) {
        // Nothing left to shed: the budget is genuinely violated.
        ++stats.ceiling_violations;
        obs::inc(ceiling_c);
        return;
      }
      ++stats.viewers_shed;
      obs::inc(viewers_shed_c);
      evict_viewer(victim, engine::ViewerEvictedEvent::Reason::kMemoryShed,
                   arena[victim].last_activity);
    }
  }

  void evict_viewer(std::uint32_t slot,
                    engine::ViewerEvictedEvent::Reason reason,
                    util::SimTime at) {
    ViewerState& viewer = arena[slot];
    // An open question still gets its answer — eviction closes the
    // evidence window early rather than swallowing the inference.
    if (viewer.open) settle(viewer, at, 0, std::nullopt);
    if (viewer.idle_timer != util::TimerWheel::kInvalidTimer) {
      wheel.cancel(viewer.idle_timer);
      viewer.idle_timer = util::TimerWheel::kInvalidTimer;
    }
    if (sink != nullptr) {
      engine::ViewerEvictedEvent event;
      event.client = viewer.client;
      event.reason = reason;
      event.at = at;
      event.questions_emitted = viewer.question_seq;
      sink->on_viewer_evicted(event);
    }
    lru_unlink(slot);
    index.erase(viewer.client);
    dynamic_bytes -= viewer.dynamic_bytes();
    --active_count;
    viewer.in_use = false;
    viewer.client.clear();
    viewer.client.shrink_to_fit();
    viewer.gaps = {};
    viewer.lru_next = free_head;  // freelist reuses the LRU link
    free_head = slot;
  }

  // --- Gap ring -------------------------------------------------------

  void push_gap(ViewerState& viewer, core::GapSpan gap) {
    if (config.max_viewer_gaps == 0) return;
    if (viewer.gap_count < config.max_viewer_gaps) {
      viewer.gaps.push_back(gap);
      ++viewer.gap_count;
    } else {
      viewer.gaps[viewer.gap_head] = gap;
      viewer.gap_head = (viewer.gap_head + 1) % config.max_viewer_gaps;
    }
  }

  /// core::decode_choices' gap_between over the bounded ring: any gap
  /// strictly after `after` (or any at all when unset) at or before
  /// `until`.
  [[nodiscard]] bool gap_between(const ViewerState& viewer,
                                 std::optional<util::SimTime> after,
                                 util::SimTime until) const {
    for (std::size_t i = 0; i < viewer.gap_count; ++i) {
      const core::GapSpan& gap =
          viewer.gaps[(viewer.gap_head + i) % viewer.gaps.size()];
      if (gap.at > until) break;  // ring is time-ordered (monotone feed)
      if (!after || gap.at > *after) return true;
    }
    return false;
  }

  [[nodiscard]] bool gap_in_window(const ViewerState& viewer,
                                   util::SimTime start,
                                   std::optional<util::SimTime> before) const {
    for (std::size_t i = 0; i < viewer.gap_count; ++i) {
      const core::GapSpan& gap =
          viewer.gaps[(viewer.gap_head + i) % viewer.gaps.size()];
      if (before && gap.at >= *before) break;
      if (gap.at >= start) return true;
    }
    return false;
  }

  static void taint(core::InferredQuestion& question, double confidence,
                    const char* tag) {
    question.confidence = std::min(question.confidence, confidence);
    if (!question.evidence.empty()) question.evidence += ';';
    question.evidence += tag;
  }

  // --- Emission -------------------------------------------------------

  void open_question(ViewerState& viewer, util::SimTime at,
                     std::uint16_t record_length, bool after_gap) {
    viewer.question = core::InferredQuestion{};
    viewer.question.index = ++viewer.question_seq;
    viewer.question.question_time = at;
    if (after_gap) {
      taint(viewer.question, config.after_gap_confidence, "type1_after_gap");
    }
    viewer.open = true;
    viewer.open_record_length = record_length;
    ++stats.questions_opened;
    obs::inc(questions_c);
    if (sink != nullptr) {
      engine::QuestionOpenedEvent event;
      event.client = viewer.client;
      event.question = viewer.question;
      event.record_length = record_length;
      sink->on_question_opened(event);
    }
    viewer.window_timer = wheel.reschedule(
        viewer.window_timer, at + config.evidence_window,
        timer_data(static_cast<std::uint32_t>(&viewer - arena.data()),
                   TimerKind::kWindow));
  }

  /// Close the open question's evidence window and emit its answer.
  /// `next_question_at` bounds the batch post-pass' gap window when the
  /// close was caused by a successor question; a timer/override close
  /// considers every gap seen so far.
  void settle(ViewerState& viewer, util::SimTime at,
              std::uint16_t record_length,
              std::optional<util::SimTime> next_question_at) {
    assert(viewer.open);
    if (viewer.window_timer != util::TimerWheel::kInvalidTimer) {
      wheel.cancel(viewer.window_timer);
      viewer.window_timer = util::TimerWheel::kInvalidTimer;
    }
    viewer.open = false;
    core::InferredQuestion question = viewer.question;
    if (gap_in_window(viewer, question.question_time - config.gap_window,
                      next_question_at)) {
      taint(question, config.gap_window_confidence, "gap_in_window");
    }
    ++stats.choices_inferred;
    obs::inc(choices_c);
    if (question.choice != story::Choice::kDefault) {
      ++stats.overrides;
      obs::inc(overrides_c);
    }
    const std::int64_t latency_ms =
        (at - question.question_time).total_millis();
    obs::observe(emit_latency_h,
                 latency_ms > 0 ? static_cast<std::uint64_t>(latency_ms) : 0);
    if (sink != nullptr) {
      engine::ChoiceInferredEvent event;
      event.client = viewer.client;
      event.question = question;
      event.record_length = record_length;
      event.at = at;
      event.final = true;
      sink->on_choice_inferred(event);
    }
  }

  // --- Record decoding (the incremental decode_choices mirror) --------

  void on_record(std::uint32_t slot, const core::ClientRecordObservation& obs,
                 core::RecordClass cls) {
    ViewerState& viewer = arena[slot];
    ++stats.client_records;
    viewer.last_activity = obs.timestamp;
    lru_touch(slot);
    if (config.viewer_idle_timeout != util::Duration{}) {
      viewer.idle_timer = wheel.reschedule(
          viewer.idle_timer, obs.timestamp + config.viewer_idle_timeout,
          timer_data(slot, TimerKind::kViewerIdle));
    }

    switch (cls) {
      case core::RecordClass::kType1Json: {
        if (viewer.last_type1 &&
            obs.timestamp - *viewer.last_type1 < config.min_question_gap) {
          break;  // retransmission artifact / band misfire
        }
        viewer.last_type1 = obs.timestamp;
        viewer.last_anchor = obs.timestamp;
        // A successor question settles its predecessor: overrides only
        // ever attach to the most recent question.
        if (viewer.open) settle(viewer, obs.timestamp, 0, obs.timestamp);
        open_question(viewer, obs.timestamp, obs.record_length, obs.after_gap);
        break;
      }
      case core::RecordClass::kType2Json: {
        const bool hole_since_anchor =
            gap_between(viewer, viewer.last_anchor, obs.timestamp);
        if (hole_since_anchor || (viewer.question_seq == 0 && obs.after_gap)) {
          // The type-1 that should anchor this override was presumably
          // lost in the hole: synthesize the question at low
          // confidence, exactly as the batch decoder does.
          if (viewer.open) settle(viewer, obs.timestamp, 0, obs.timestamp);
          viewer.last_anchor = obs.timestamp;
          open_question(viewer, obs.timestamp, obs.record_length, false);
          viewer.question.choice = story::Choice::kNonDefault;
          viewer.question.override_time = obs.timestamp;
          taint(viewer.question, config.after_gap_confidence,
                "type2_presumed_lost_type1");
          ++stats.questions_synthesized;
          settle(viewer, obs.timestamp, obs.record_length, std::nullopt);
          break;
        }
        if (!viewer.open) break;  // stray, or its window already closed
        // First override wins; it also settles the window — nothing
        // can revise this question any more.
        viewer.question.choice = story::Choice::kNonDefault;
        viewer.question.override_time = obs.timestamp;
        if (obs.after_gap) {
          taint(viewer.question, config.after_gap_confidence,
                "type2_after_gap");
        }
        settle(viewer, obs.timestamp, obs.record_length, std::nullopt);
        break;
      }
      case core::RecordClass::kOther:
        break;
    }
  }

  // --- Extractor plumbing ---------------------------------------------

  void handle_event(const tls::StreamEvent& stream_event) {
    if (stream_event.kind == tls::StreamEvent::Kind::kGap) {
      const tls::StreamGapEvent& gap = stream_event.gap;
      if (gap.direction != net::FlowDirection::kClientToServer) return;
      const std::string key = client_key(stream_event.flow);
      const std::uint32_t slot = viewer_of(key, gap.timestamp);
      ViewerState& viewer = arena[slot];
      const core::GapSpan span{gap.timestamp, gap.length};
      push_gap(viewer, span);
      ++stats.gaps_observed;
      obs::inc(gaps_c);
      if (sink != nullptr) {
        engine::GapObservedEvent event;
        event.client = viewer.client;
        event.gap = span;
        sink->on_gap_observed(event);
      }
      return;
    }

    const tls::RecordEvent& event = stream_event.event;
    if (!event.is_client_application_data()) return;
    const std::string key = client_key(stream_event.flow);
    const std::uint32_t slot = viewer_of(key, event.timestamp);

    core::ClientRecordObservation observation;
    observation.timestamp = event.timestamp;
    observation.record_length = event.record_length;
    observation.after_gap = event.after_gap;
    on_record(slot, observation, classifier.classify(event.record_length));
  }

  // --- Timers ---------------------------------------------------------

  void on_timer(util::TimerWheel::TimerId id, std::uint64_t data,
                util::SimTime deadline) {
    ++stats.timer_fires;
    obs::inc(timer_c);
    const auto kind = static_cast<TimerKind>(data & 0x3u);
    if (kind == TimerKind::kFlowSweep) {
      sweep_timer = util::TimerWheel::kInvalidTimer;
      const std::size_t evicted = extractor.sweep_idle(deadline);
      stats.flows_swept += evicted;
      obs::inc(sweeps_c, evicted);
      arm_flow_sweep(deadline);
      return;
    }
    const auto slot = static_cast<std::uint32_t>(data >> 2);
    if (slot >= arena.size() || !arena[slot].in_use) return;
    ViewerState& viewer = arena[slot];
    if (kind == TimerKind::kWindow) {
      if (viewer.window_timer != id) return;  // rearmed since; stale fire
      viewer.window_timer = util::TimerWheel::kInvalidTimer;
      if (viewer.open) settle(viewer, deadline, 0, std::nullopt);
      return;
    }
    // Viewer idle.
    if (viewer.idle_timer != id) return;  // activity rearmed it
    viewer.idle_timer = util::TimerWheel::kInvalidTimer;
    ++stats.viewers_evicted_idle;
    obs::inc(viewers_idle_c);
    evict_viewer(slot, engine::ViewerEvictedEvent::Reason::kIdle, deadline);
  }

  void arm_flow_sweep(util::SimTime now) {
    if (config.flow_idle_timeout == util::Duration{}) return;
    // Sweep at half the timeout: flows leave within 1.5x even when no
    // packet ever hits their extractor again.
    const util::Duration period =
        util::Duration::nanos(config.flow_idle_timeout.total_nanos() / 2);
    sweep_timer = wheel.schedule(now + period,
                                 timer_data(kNilIndex, TimerKind::kFlowSweep));
  }

  void advance(util::SimTime now) {
    wheel.advance(now, [this](util::TimerWheel::TimerId id, std::uint64_t data,
                              util::SimTime deadline) {
      on_timer(id, data, deadline);
    });
    note_memory();
  }

  void feed(const net::Packet& packet) {
    ++stats.packets;
    // Fire everything due strictly before this packet's instant, then
    // analyze — one timeline, capture-time ordered.
    advance(packet.timestamp);
    if (sweep_timer == util::TimerWheel::kInvalidTimer) {
      arm_flow_sweep(packet.timestamp);
    }
    for (const tls::StreamEvent& stream_event : extractor.feed(packet)) {
      handle_event(stream_event);
    }
  }

  const core::RecordClassifier& classifier;
  const MonitorConfig config;
  engine::EventSink* const sink;
  util::TimerWheel wheel;
  tls::RecordStreamExtractor extractor;
  MonitorStats stats;

  std::vector<ViewerState> arena;
  std::unordered_map<std::string, std::uint32_t> index;
  std::uint32_t free_head = kNilIndex;
  std::uint32_t lru_head = kNilIndex;
  std::uint32_t lru_tail = kNilIndex;
  std::size_t active_count = 0;
  std::size_t dynamic_bytes = 0;
  util::TimerWheel::TimerId sweep_timer = util::TimerWheel::kInvalidTimer;
  bool finished = false;

  obs::Counter* viewers_opened_c = nullptr;
  obs::Counter* viewers_idle_c = nullptr;
  obs::Counter* viewers_shed_c = nullptr;
  obs::Counter* viewers_peak_c = nullptr;
  obs::Counter* mem_peak_c = nullptr;
  obs::Counter* ceiling_c = nullptr;
  obs::Counter* questions_c = nullptr;
  obs::Counter* choices_c = nullptr;
  obs::Counter* overrides_c = nullptr;
  obs::Counter* gaps_c = nullptr;
  obs::Counter* sweeps_c = nullptr;
  obs::Counter* timer_c = nullptr;
  obs::Histogram* emit_latency_h = nullptr;
};

ContinuousMonitor::ContinuousMonitor(const core::RecordClassifier& classifier,
                                     MonitorConfig config,
                                     engine::EventSink* sink)
    : impl_(std::make_unique<Impl>(classifier, config, sink)) {}

ContinuousMonitor::~ContinuousMonitor() = default;

void ContinuousMonitor::feed(const net::Packet& packet) {
  impl_->feed(packet);
}

std::size_t ContinuousMonitor::consume(engine::PacketSource& source) {
  std::size_t total = 0;
  engine::PacketBatch batch;
  while (source.read_batch(batch, 256) != 0) {
    total += batch.size();
    for (const net::Packet& packet : batch) impl_->feed(packet);
  }
  return total;
}

void ContinuousMonitor::advance_to(util::SimTime now) {
  impl_->advance(now);
}

MonitorStats ContinuousMonitor::finish() {
  Impl& impl = *impl_;
  if (impl.finished) return impl.stats;
  impl.finished = true;
  // Residual reassembly/parser state still decodes: flush the extractor
  // and run its final records through the same path.
  for (const tls::StreamEvent& stream_event : impl.extractor.flush()) {
    impl.handle_event(stream_event);
  }
  // Settle and evict everyone left, oldest first (deterministic order).
  while (impl.lru_head != kNilIndex) {
    const std::uint32_t slot = impl.lru_head;
    impl.evict_viewer(slot, engine::ViewerEvictedEvent::Reason::kShutdown,
                      impl.arena[slot].last_activity);
  }
  if (impl.sweep_timer != util::TimerWheel::kInvalidTimer) {
    impl.wheel.cancel(impl.sweep_timer);
    impl.sweep_timer = util::TimerWheel::kInvalidTimer;
  }
  impl.note_memory();
  return impl.stats;
}

const MonitorStats& ContinuousMonitor::stats() const { return impl_->stats; }

std::size_t ContinuousMonitor::active_viewers() const {
  return impl_->active_count;
}

std::size_t ContinuousMonitor::memory_bytes() const {
  return impl_->live_bytes();
}

util::SimTime ContinuousMonitor::now() const { return impl_->wheel.now(); }

}  // namespace wm::monitor
