#include "wm/monitor/live_source.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace wm::monitor {

std::optional<net::Packet> InjectableTap::next() {
  net::Packet packet;
  if (!ring_.pop(packet)) return std::nullopt;
  return packet;
}

std::size_t InjectableTap::read_batch(engine::PacketBatch& out,
                                      std::size_t max) {
  out.clear();
  if (max == 0) return 0;
  net::Packet first;
  if (!ring_.pop(first)) return 0;  // closed and fully drained
  out.append(std::move(first));
  if (max == 1) return 1;
  // Drain whatever else is already queued without parking again. The
  // scratch slots and the batch slots trade buffers by move, so the
  // steady state allocates nothing.
  scratch_.resize(max - 1);
  const std::size_t extra = ring_.try_pop_n(scratch_.data(), scratch_.size());
  for (std::size_t i = 0; i < extra; ++i) {
    out.append(std::move(scratch_[i]));
  }
  return 1 + extra;
}

std::chrono::steady_clock::time_point TimedReplaySource::due_at(
    util::SimTime ts) const {
  const double capture_delta =
      static_cast<double>(ts.nanos() - capture_start_nanos_);
  const double wall_delta = capture_delta / config_.speed;
  return wall_start_ +
         std::chrono::nanoseconds(static_cast<std::int64_t>(wall_delta));
}

void TimedReplaySource::wait_until_due(util::SimTime ts) {
  if (config_.speed <= 0.0) return;
  if (!epoch_set_) {
    epoch_set_ = true;
    wall_start_ = std::chrono::steady_clock::now();
    capture_start_nanos_ = ts.nanos();
    return;
  }
  const auto deadline = due_at(ts);
  const auto max_slice =
      std::chrono::nanoseconds(std::max<std::int64_t>(
          config_.max_sleep.total_nanos(), 1));
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(remaining < max_slice ? remaining : max_slice);
  }
}

bool TimedReplaySource::fill_pending() {
  if (pending_.has_value()) return true;
  pending_ = inner_.next();
  return pending_.has_value();
}

std::optional<net::Packet> TimedReplaySource::next() {
  if (!fill_pending()) return std::nullopt;
  wait_until_due(pending_->timestamp);
  position_ = pending_->timestamp;
  std::optional<net::Packet> out = std::move(pending_);
  pending_.reset();
  return out;
}

std::size_t TimedReplaySource::read_batch(engine::PacketBatch& out,
                                          std::size_t max) {
  out.clear();
  if (max == 0 || !fill_pending()) return 0;
  // Block for the first packet; everything after rides along only if
  // it is already due (a capture burst replays as a burst).
  wait_until_due(pending_->timestamp);
  position_ = pending_->timestamp;
  out.append(std::move(*pending_));
  pending_.reset();
  std::size_t count = 1;
  const auto now = std::chrono::steady_clock::now();
  while (count < max && fill_pending()) {
    if (config_.speed > 0.0 && due_at(pending_->timestamp) > now) break;
    position_ = pending_->timestamp;
    out.append(std::move(*pending_));
    pending_.reset();
    ++count;
  }
  return count;
}

}  // namespace wm::monitor
