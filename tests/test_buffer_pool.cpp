// ObjectPool / BufferPool: RAII lease recycling, capacity retention,
// hit/miss/high-water observability, retention bounds, and a
// multi-thread hammer for the TSan label set.
#include "wm/util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "wm/obs/registry.hpp"

namespace wm::util {
namespace {

TEST(ObjectPool, LeaseReturnsObjectWithCapacityIntact) {
  ObjectPool<std::vector<int>> pool;
  const int* first_buffer = nullptr;
  {
    auto lease = pool.acquire();
    lease->assign(1000, 7);
    first_buffer = lease->data();
    ASSERT_NE(first_buffer, nullptr);
  }  // lease drops: the vector (and its heap buffer) go back to the pool
  EXPECT_EQ(pool.idle_count(), 1u);
  auto lease = pool.acquire();
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_GE(lease->capacity(), 1000u);       // recycled capacity
  EXPECT_EQ(lease->data(), first_buffer);    // literally the same buffer
}

TEST(ObjectPool, HitMissAndHighWaterCounters) {
  obs::Registry registry;
  PoolMetrics metrics;
  metrics.hits = registry.counter("pool.hits", obs::Stability::kVolatile);
  metrics.misses = registry.counter("pool.misses", obs::Stability::kVolatile);
  metrics.high_water =
      registry.counter("pool.high_water", obs::Stability::kVolatile);

  ObjectPool<std::vector<int>> pool;
  pool.set_metrics(metrics);

  {
    auto a = pool.acquire();  // miss, 1 outstanding
    auto b = pool.acquire();  // miss, 2 outstanding (high water)
  }
  auto c = pool.acquire();  // hit, 1 outstanding
  EXPECT_EQ(metrics.hits->value(), 1u);
  EXPECT_EQ(metrics.misses->value(), 2u);
  EXPECT_EQ(metrics.high_water->value(), 2u);
  EXPECT_EQ(pool.high_water(), 2u);
  EXPECT_EQ(pool.outstanding(), 1u);
}

TEST(ObjectPool, RetentionIsBounded) {
  ObjectPool<std::vector<int>> pool(/*max_retained=*/2);
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    auto c = pool.acquire();
    auto d = pool.acquire();
  }  // four releases, but only two survive
  EXPECT_EQ(pool.idle_count(), 2u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(ObjectPool, LeaseMoveAndEarlyRelease) {
  ObjectPool<std::vector<int>> pool;
  auto lease = pool.acquire();
  lease->push_back(42);
  auto moved = std::move(lease);
  EXPECT_FALSE(static_cast<bool>(lease));
  ASSERT_TRUE(static_cast<bool>(moved));
  EXPECT_EQ(moved->at(0), 42);
  moved.release();
  EXPECT_FALSE(static_cast<bool>(moved));
  EXPECT_EQ(pool.idle_count(), 1u);
  moved.release();  // double release is a no-op
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(BufferPool, SlabsArriveClearedWithReservedCapacity) {
  BufferPool pool(/*slab_size=*/4096);
  const std::uint8_t* recycled = nullptr;
  {
    auto slab = pool.acquire();
    EXPECT_TRUE(slab->empty());
    EXPECT_GE(slab->capacity(), 4096u);
    slab->assign(8000, 0xab);  // grow past slab_size, then recycle
    recycled = slab->data();
  }
  auto again = pool.acquire();
  EXPECT_TRUE(again->empty());          // cleared...
  EXPECT_GE(again->capacity(), 8000u);  // ...capacity kept
  EXPECT_EQ(again->data(), recycled);
}

TEST(ObjectPool, ConcurrentAcquireReleaseHammer) {
  // Several threads churning leases: exercised under TSan via the
  // "concurrency" ctest label. Afterwards the books must balance.
  obs::Registry registry;
  PoolMetrics metrics;
  metrics.hits = registry.counter("pool.hits", obs::Stability::kVolatile);
  metrics.misses = registry.counter("pool.misses", obs::Stability::kVolatile);
  metrics.high_water =
      registry.counter("pool.high_water", obs::Stability::kVolatile);

  ObjectPool<std::vector<std::uint8_t>> pool;
  pool.set_metrics(metrics);
  constexpr int kThreads = 4;
  constexpr int kIterations = 5'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto lease = pool.acquire();
        lease->assign(64 + static_cast<std::size_t>(t), 0x5a);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(metrics.hits->value() + metrics.misses->value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_LE(pool.high_water(), static_cast<std::size_t>(kThreads));
  EXPECT_GE(pool.high_water(), 1u);
}

}  // namespace
}  // namespace wm::util
