// Choice decoding and path reconstruction, plus evaluation scoring.
#include <gtest/gtest.h>

#include "wm/core/decoder.hpp"
#include "wm/core/eval.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::core {
namespace {

/// A fixed classifier for decoder tests: 2212 = type-1, 3000 = type-2.
class FixedClassifier final : public RecordClassifier {
 public:
  void fit(const std::vector<LabeledObservation>&) override {}
  [[nodiscard]] RecordClass classify(std::uint16_t length) const override {
    if (length == 2212) return RecordClass::kType1Json;
    if (length == 3000) return RecordClass::kType2Json;
    return RecordClass::kOther;
  }
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] bool fitted() const override { return true; }
};

ClientRecordObservation obs(double seconds, std::uint16_t length) {
  ClientRecordObservation out;
  out.timestamp = util::SimTime::from_seconds(seconds);
  out.record_length = length;
  return out;
}

TEST(Decoder, DefaultWhenNoType2Follows) {
  FixedClassifier clf;
  const auto result = decode_choices(
      clf, {obs(1.0, 2212), obs(5.0, 2212), obs(9.0, 2212)});
  ASSERT_EQ(result.questions.size(), 3u);
  for (const InferredQuestion& q : result.questions) {
    EXPECT_EQ(q.choice, story::Choice::kDefault);
    EXPECT_FALSE(q.override_time.has_value());
  }
}

TEST(Decoder, Type2MarksNonDefault) {
  FixedClassifier clf;
  const auto result = decode_choices(
      clf, {obs(1.0, 2212), obs(2.0, 3000), obs(5.0, 2212), obs(9.0, 2212),
            obs(9.5, 3000)});
  ASSERT_EQ(result.questions.size(), 3u);
  EXPECT_EQ(result.questions[0].choice, story::Choice::kNonDefault);
  EXPECT_EQ(result.questions[1].choice, story::Choice::kDefault);
  EXPECT_EQ(result.questions[2].choice, story::Choice::kNonDefault);
  ASSERT_TRUE(result.questions[0].override_time.has_value());
  EXPECT_DOUBLE_EQ(result.questions[0].override_time->to_seconds(), 2.0);
}

TEST(Decoder, OthersInterleavedIgnored) {
  FixedClassifier clf;
  const auto result = decode_choices(
      clf, {obs(0.5, 404), obs(1.0, 2212), obs(1.5, 700), obs(2.0, 3000),
            obs(2.5, 16408), obs(5.0, 2212)});
  ASSERT_EQ(result.questions.size(), 2u);
  EXPECT_EQ(result.questions[0].choice, story::Choice::kNonDefault);
  EXPECT_EQ(result.questions[1].choice, story::Choice::kDefault);
  EXPECT_EQ(result.other_records, 3u);
}

TEST(Decoder, DuplicateType1Suppressed) {
  FixedClassifier clf;
  // A retransmitted type-1 60ms later must not create a phantom question.
  const auto result = decode_choices(
      clf, {obs(1.0, 2212), obs(1.06, 2212), obs(5.0, 2212)});
  EXPECT_EQ(result.questions.size(), 2u);
  EXPECT_EQ(result.type1_records, 3u);
}

TEST(Decoder, DistantType1NotSuppressed) {
  FixedClassifier clf;
  const auto result =
      decode_choices(clf, {obs(1.0, 2212), obs(1.5, 2212)});
  EXPECT_EQ(result.questions.size(), 2u);
}

TEST(Decoder, StrayType2BeforeAnyQuestionIgnored) {
  FixedClassifier clf;
  const auto result = decode_choices(clf, {obs(0.5, 3000), obs(1.0, 2212)});
  ASSERT_EQ(result.questions.size(), 1u);
  EXPECT_EQ(result.questions[0].choice, story::Choice::kDefault);
}

TEST(Decoder, SecondType2ForSameQuestionIgnored) {
  FixedClassifier clf;
  const auto result =
      decode_choices(clf, {obs(1.0, 2212), obs(2.0, 3000), obs(2.5, 3000)});
  ASSERT_EQ(result.questions.size(), 1u);
  EXPECT_EQ(result.questions[0].choice, story::Choice::kNonDefault);
  EXPECT_DOUBLE_EQ(result.questions[0].override_time->to_seconds(), 2.0);
  EXPECT_EQ(result.type2_records, 2u);
}

TEST(Decoder, EmptyObservationsEmptyResult) {
  FixedClassifier clf;
  const auto result = decode_choices(clf, {});
  EXPECT_TRUE(result.questions.empty());
  EXPECT_TRUE(result.choices().empty());
}

// --- gap-aware confidence ---------------------------------------------

ClientRecordObservation tainted_obs(double seconds, std::uint16_t length) {
  ClientRecordObservation out = obs(seconds, length);
  out.after_gap = true;
  return out;
}

GapSpan gap_at(double seconds, std::uint64_t bytes) {
  GapSpan gap;
  gap.at = util::SimTime::from_seconds(seconds);
  gap.bytes = bytes;
  return gap;
}

TEST(Decoder, CleanStreamDecodesAtFullConfidence) {
  FixedClassifier clf;
  const auto result = decode_choices(
      clf, {obs(1.0, 2212), obs(2.0, 3000), obs(5.0, 2212)}, DecodeOptions{});
  ASSERT_EQ(result.questions.size(), 2u);
  for (const InferredQuestion& q : result.questions) {
    EXPECT_DOUBLE_EQ(q.confidence, 1.0);
    EXPECT_TRUE(q.evidence.empty());
  }
}

TEST(Decoder, Type1AfterGapOpensLowConfidenceQuestion) {
  FixedClassifier clf;
  const auto result = decode_choices(
      clf, {tainted_obs(1.0, 2212), obs(5.0, 2212)}, DecodeOptions{});
  ASSERT_EQ(result.questions.size(), 2u);
  EXPECT_LT(result.questions[0].confidence, 1.0);
  EXPECT_NE(result.questions[0].evidence.find("type1_after_gap"),
            std::string::npos);
  // The later, untainted question is unaffected.
  EXPECT_DOUBLE_EQ(result.questions[1].confidence, 1.0);
}

TEST(Decoder, OrphanType2AfterGapSynthesizesLowConfidenceQuestion) {
  // A hole sits between question 1's anchor and the type-2: the type-1
  // that should anchor the override was presumably inside the gap, so
  // the decoder must NOT credit the override to question 1 at full
  // strength — it synthesizes a new low-confidence non-default.
  FixedClassifier clf;
  DecodeOptions options;
  options.gaps = {gap_at(4.0, 6000)};
  const auto result = decode_choices(
      clf, {obs(1.0, 2212), obs(5.0, 3000)}, options);
  ASSERT_EQ(result.questions.size(), 2u);
  EXPECT_EQ(result.questions[0].choice, story::Choice::kDefault);
  EXPECT_EQ(result.questions[1].choice, story::Choice::kNonDefault);
  EXPECT_LT(result.questions[1].confidence, 1.0);
  EXPECT_NE(result.questions[1].evidence.find("type2_presumed_lost_type1"),
            std::string::npos);
}

TEST(Decoder, GapInsideQuestionWindowCapsConfidence) {
  FixedClassifier clf;
  DecodeOptions options;
  options.gaps = {gap_at(2.0, 1400)};  // between Q1 (1.0) and Q2 (5.0)
  const auto result = decode_choices(
      clf, {obs(1.0, 2212), obs(5.0, 2212), obs(6.0, 3000)}, options);
  ASSERT_EQ(result.questions.size(), 2u);
  // The gap could have swallowed Q1's override: capped, and tagged.
  EXPECT_LT(result.questions[0].confidence, 1.0);
  EXPECT_NE(result.questions[0].evidence.find("gap_in_window"),
            std::string::npos);
}

TEST(Decoder, DefaultOptionsReproduceHistoricalDecode) {
  // With no gaps and no after_gap taints the gap-aware overload must
  // be byte-equivalent to the historical min_question_gap entry point.
  FixedClassifier clf;
  const std::vector<ClientRecordObservation> observations = {
      obs(1.0, 2212), obs(1.06, 2212), obs(2.0, 3000),
      obs(5.0, 2212), obs(9.0, 2212),  obs(9.5, 3000)};
  const auto historical =
      decode_choices(clf, observations, util::Duration::millis(120));
  const auto gap_aware = decode_choices(clf, observations, DecodeOptions{});
  ASSERT_EQ(historical.questions.size(), gap_aware.questions.size());
  for (std::size_t i = 0; i < historical.questions.size(); ++i) {
    EXPECT_EQ(historical.questions[i].choice, gap_aware.questions[i].choice);
    EXPECT_EQ(historical.questions[i].question_time,
              gap_aware.questions[i].question_time);
    EXPECT_DOUBLE_EQ(gap_aware.questions[i].confidence, 1.0);
  }
}

TEST(ReconstructPath, FollowsChoicesThroughGraph) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const std::vector<story::Choice> choices(13, story::Choice::kDefault);
  const InferredPath path = reconstruct_path(graph, choices);
  EXPECT_FALSE(path.segments.empty());
  EXPECT_TRUE(path.reached_ending);
  EXPECT_EQ(path.segment_names.front(), "SEGMENT_0_OPENING");
  EXPECT_GE(path.choice_surplus, 0);
}

TEST(ReconstructPath, SurplusSignalsOverDetection) {
  const story::StoryGraph graph = story::make_bandersnatch();
  // Way more choices than any path consumes.
  const std::vector<story::Choice> choices(40, story::Choice::kNonDefault);
  const InferredPath path = reconstruct_path(graph, choices);
  EXPECT_GT(path.choice_surplus, 0);
}

// --- eval --------------------------------------------------------------

sim::SessionGroundTruth truth_of(const std::vector<story::Choice>& choices) {
  sim::SessionGroundTruth truth;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    sim::QuestionOutcome q;
    q.index = i + 1;
    q.choice = choices[i];
    q.question_time = util::SimTime::from_seconds(static_cast<double>(i) * 10);
    truth.questions.push_back(q);
  }
  return truth;
}

InferredSession inferred_of(const std::vector<story::Choice>& choices) {
  InferredSession out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    InferredQuestion q;
    q.index = i + 1;
    q.choice = choices[i];
    out.questions.push_back(q);
  }
  return out;
}

TEST(Eval, PerfectSession) {
  using story::Choice;
  const std::vector<Choice> choices{Choice::kDefault, Choice::kNonDefault};
  const SessionScore score = score_session(truth_of(choices), inferred_of(choices));
  EXPECT_EQ(score.choices_correct, 2u);
  EXPECT_DOUBLE_EQ(score.choice_accuracy, 1.0);
  EXPECT_TRUE(score.question_count_match);
}

TEST(Eval, MissedQuestionCountsAsWrong) {
  using story::Choice;
  const auto truth = truth_of({Choice::kDefault, Choice::kNonDefault,
                               Choice::kDefault});
  const auto inferred = inferred_of({Choice::kDefault, Choice::kNonDefault});
  const SessionScore score = score_session(truth, inferred);
  EXPECT_EQ(score.choices_correct, 2u);
  EXPECT_NEAR(score.choice_accuracy, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(score.question_count_match);
}

TEST(Eval, ExtraInferredQuestionDoesNotInflate) {
  using story::Choice;
  const auto truth = truth_of({Choice::kDefault});
  const auto inferred = inferred_of({Choice::kDefault, Choice::kNonDefault});
  const SessionScore score = score_session(truth, inferred);
  EXPECT_DOUBLE_EQ(score.choice_accuracy, 1.0);
  EXPECT_FALSE(score.question_count_match);
}

TEST(Eval, EmptyTruthScoresPerfect) {
  const SessionScore score = score_session(truth_of({}), inferred_of({}));
  EXPECT_DOUBLE_EQ(score.choice_accuracy, 1.0);
}

TEST(Eval, AggregateWorstCase) {
  using story::Choice;
  std::vector<SessionScore> scores;
  scores.push_back(score_session(truth_of({Choice::kDefault, Choice::kDefault}),
                                 inferred_of({Choice::kDefault, Choice::kDefault})));
  scores.push_back(
      score_session(truth_of({Choice::kDefault, Choice::kNonDefault}),
                    inferred_of({Choice::kDefault, Choice::kDefault})));
  const AggregateScore agg = aggregate_scores(scores);
  EXPECT_EQ(agg.sessions, 2u);
  EXPECT_EQ(agg.questions, 4u);
  EXPECT_EQ(agg.correct, 3u);
  EXPECT_DOUBLE_EQ(agg.worst_accuracy, 0.5);
  EXPECT_DOUBLE_EQ(agg.mean_accuracy, 0.75);
  EXPECT_DOUBLE_EQ(agg.pooled_accuracy, 0.75);
}

TEST(Eval, AggregateEmpty) {
  const AggregateScore agg = aggregate_scores({});
  EXPECT_DOUBLE_EQ(agg.worst_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(agg.mean_accuracy, 1.0);
}

}  // namespace
}  // namespace wm::core
