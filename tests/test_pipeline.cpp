// End-to-end attack integration: capture -> choices, across operating
// conditions, classifiers and story graphs; plus the bitrate baseline
// failing intra-video (the §II argument).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "wm/core/bitrate_baseline.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/net/pcap.hpp"
#include "wm/dataset/choice_policy.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/story/generator.hpp"

namespace wm::core {
namespace {

using story::Choice;

sim::SessionResult simulate(const story::StoryGraph& graph,
                            const sim::OperationalConditions& conditions,
                            const std::vector<Choice>& choices,
                            std::uint64_t seed) {
  sim::SessionConfig config;
  config.conditions = conditions;
  config.seed = seed;
  return sim::simulate_session(graph, choices, config);
}

std::vector<Choice> alternating(std::size_t n) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(i % 2 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }
  return out;
}

/// Whole-capture decode of an in-memory packet vector through the
/// single options-based entry point.
InferredSession infer_combined(const AttackPipeline& attack,
                               const std::vector<net::Packet>& packets) {
  engine::VectorSource source(&packets);
  return attack.infer(source).combined;
}

class PipelinePerCondition
    : public ::testing::TestWithParam<sim::OperationalConditions> {};

TEST_P(PipelinePerCondition, RecoversAllChoices) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const sim::OperationalConditions conditions = GetParam();

  // Calibrate on a few sessions under the same conditions (the paper
  // built its Fig. 2 bands from multiple viewings per condition).
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t seed : {1001u, 1002u, 1003u}) {
    auto calib = simulate(graph, conditions, alternating(13), seed);
    calibration.push_back(CalibrationSession{std::move(calib.capture.packets),
                                             std::move(calib.truth)});
  }
  AttackPipeline attack("interval");
  attack.calibrate(calibration);

  // Attack a different viewing.
  const auto victim =
      simulate(graph, conditions, {Choice::kDefault, Choice::kDefault,
                                   Choice::kNonDefault, Choice::kDefault,
                                   Choice::kNonDefault, Choice::kDefault,
                                   Choice::kDefault, Choice::kDefault,
                                   Choice::kDefault, Choice::kDefault,
                                   Choice::kDefault, Choice::kDefault,
                                   Choice::kDefault},
               2002);
  const InferredSession inferred = infer_combined(attack, victim.capture.packets);
  const SessionScore score = score_session(victim.truth, inferred);
  // The paper reports 96% worst-case, not 100%: rare band-edge samples
  // outside the calibrated interval are expected.
  EXPECT_GE(score.choice_accuracy, 0.9) << conditions.to_string();
  EXPECT_TRUE(score.question_count_match) << conditions.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeConditions, PipelinePerCondition,
    ::testing::Values(
        sim::OperationalConditions{},  // Linux/Firefox/Wired/Desktop/Noon
        sim::OperationalConditions{sim::OperatingSystem::kWindows,
                                   sim::Platform::kDesktop,
                                   sim::TrafficCondition::kNoon,
                                   sim::ConnectionType::kWired,
                                   sim::Browser::kFirefox},
        sim::OperationalConditions{sim::OperatingSystem::kMac,
                                   sim::Platform::kLaptop,
                                   sim::TrafficCondition::kMorning,
                                   sim::ConnectionType::kWireless,
                                   sim::Browser::kChrome},
        sim::OperationalConditions{sim::OperatingSystem::kLinux,
                                   sim::Platform::kLaptop,
                                   sim::TrafficCondition::kNight,
                                   sim::ConnectionType::kWireless,
                                   sim::Browser::kChrome},
        sim::OperationalConditions{sim::OperatingSystem::kWindows,
                                   sim::Platform::kLaptop,
                                   sim::TrafficCondition::kNight,
                                   sim::ConnectionType::kWireless,
                                   sim::Browser::kFirefox}),
    [](const ::testing::TestParamInfo<sim::OperationalConditions>& info) {
      std::string name = sim::to_string(info.param.os) +
                         sim::to_string(info.param.connection) +
                         sim::to_string(info.param.browser);
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name;
    });

TEST(Pipeline, KnnAndNbAlsoRecover) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const sim::OperationalConditions conditions;
  // kNN needs denser calibration than the interval method: with one
  // session the two type-2 examples get outvoted by telemetry points.
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t seed : {3001u, 3003u, 3004u, 3005u}) {
    auto calib = simulate(graph, conditions,
                          std::vector<Choice>(13, Choice::kNonDefault), seed);
    calibration.push_back(CalibrationSession{std::move(calib.capture.packets),
                                             std::move(calib.truth)});
  }
  const auto victim = simulate(graph, conditions, alternating(13), 3002);

  for (const char* name : {"knn", "gaussian-nb"}) {
    AttackPipeline attack(name);
    attack.calibrate(calibration);
    const InferredSession inferred = infer_combined(attack, victim.capture.packets);
    const SessionScore score = score_session(victim.truth, inferred);
    EXPECT_GE(score.choice_accuracy, 0.75) << name;
  }
}

TEST(Pipeline, WorksOnGeneratedStories) {
  util::Rng rng(505);
  story::GeneratorConfig gen;
  gen.questions = 6;
  const story::StoryGraph graph = story::generate_story(gen, rng);
  const sim::OperationalConditions conditions;

  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    auto calib = simulate(graph, conditions, alternating(10), 4001 + s);
    calibration.push_back(CalibrationSession{std::move(calib.capture.packets),
                                             std::move(calib.truth)});
  }
  AttackPipeline attack("interval");
  attack.calibrate(calibration);

  const auto victim = simulate(graph, conditions, alternating(10), 4010);
  const InferredSession inferred = infer_combined(attack, victim.capture.packets);
  const SessionScore score = score_session(victim.truth, inferred);
  // At most one band-edge miss.
  EXPECT_GE(score.choices_correct + 1, score.questions_truth);
}

TEST(Pipeline, CrossConditionCalibrationKeepsJsonBandsUsable) {
  // Global (cross-condition) calibration: the classifier's bands become
  // unions over conditions. Two structural facts must hold: the JSON
  // unions stay disjoint from EACH OTHER, and every true JSON record of
  // a covered condition still classifies correctly. (Question *decode*
  // can still degrade, because one condition's telemetry may fall into
  // another condition's JSON band — quantified by the
  // ablation_calibration_scope bench.)
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::OperationalConditions linux_cond;
  sim::OperationalConditions windows_cond = linux_cond;
  windows_cond.os = sim::OperatingSystem::kWindows;

  std::vector<CalibrationSession> calibration;
  const auto s1 = simulate(graph, linux_cond, alternating(13), 5001);
  const auto s2 = simulate(graph, windows_cond, alternating(13), 5002);
  calibration.push_back(CalibrationSession{s1.capture.packets, s1.truth});
  calibration.push_back(CalibrationSession{s2.capture.packets, s2.truth});

  AttackPipeline attack("interval");
  attack.calibrate(calibration);
  const auto& clf = dynamic_cast<const IntervalClassifier&>(attack.classifier());
  EXPECT_FALSE(clf.bands_overlap());

  for (std::uint64_t seed : {5003u, 5004u}) {
    for (const auto& conditions : {linux_cond, windows_cond}) {
      const auto victim = simulate(graph, conditions, alternating(13), seed);
      const auto observations = extract_client_records(victim.capture.packets);
      for (const auto& item : label_observations(observations, victim.truth)) {
        if (item.label == RecordClass::kOther) continue;
        EXPECT_EQ(clf.classify(item.observation.record_length), item.label)
            << "len=" << item.observation.record_length;
      }
    }
  }
}

TEST(Pipeline, PcapRoundTripPreservesInference) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const sim::OperationalConditions conditions;
  const auto calib = simulate(graph, conditions, alternating(13), 6001);
  const auto victim = simulate(graph, conditions, alternating(13), 6002);

  AttackPipeline attack("interval");
  attack.calibrate({CalibrationSession{calib.capture.packets, calib.truth}});

  const auto direct = infer_combined(attack, victim.capture.packets);

  const auto path = std::filesystem::temp_directory_path() / "wm_victim.pcap";
  net::write_pcap(path, victim.capture.packets);
  const auto from_disk = attack.infer_capture(path);
  std::filesystem::remove(path);

  ASSERT_TRUE(from_disk.ok()) << from_disk.error().to_string();
  ASSERT_EQ(direct.questions.size(), from_disk->combined.questions.size());
  for (std::size_t i = 0; i < direct.questions.size(); ++i) {
    EXPECT_EQ(direct.questions[i].choice, from_disk->combined.questions[i].choice);
  }
}

TEST(Pipeline, UncalibratedPipelineState) {
  AttackPipeline attack("interval");
  EXPECT_FALSE(attack.calibrated());
  // An empty capture yields an empty inference without touching the
  // (unfitted) classifier.
  EXPECT_TRUE(infer_combined(attack, {}).questions.empty());
}

// --- bitrate baseline (ablation A2) -------------------------------------

TEST(BitrateBaseline, FailsIntraVideo) {
  // The baseline gets MORE information than a real attacker (true
  // question times) and still cannot tell default from non-default:
  // both branches stream at the same bitrate (§II).
  const story::StoryGraph graph = story::make_bandersnatch();
  const sim::OperationalConditions conditions;

  std::vector<BitrateBaseline::Calibration> calibration;
  for (std::uint64_t seed = 7001; seed < 7004; ++seed) {
    auto session = simulate(graph, conditions, alternating(13), seed);
    calibration.push_back(BitrateBaseline::Calibration{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  BitrateBaseline baseline;
  baseline.fit(calibration);

  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 7101; seed < 7106; ++seed) {
    const auto victim = simulate(graph, conditions, alternating(13), seed);
    std::vector<util::SimTime> question_times;
    for (const auto& q : victim.truth.questions) {
      question_times.push_back(q.question_time);
    }
    const auto predictions =
        baseline.predict(victim.capture.packets, question_times);
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      ++total;
      if (predictions[i] == victim.truth.questions[i].choice) ++correct;
    }
  }
  const double accuracy = static_cast<double>(correct) / static_cast<double>(total);
  // Near chance: decisively worse than the record-length attack.
  EXPECT_LT(accuracy, 0.75);
  EXPECT_GT(total, 10u);
}

// --- Options API contract -------------------------------------------
// The historic vector/path wrapper overloads are retired; every
// capability they provided must be reachable — with identical
// results — through infer(PacketSource&, InferOptions) /
// infer_capture().

void expect_equal_sessions(const InferredSession& a, const InferredSession& b,
                           const std::string& context) {
  ASSERT_EQ(a.questions.size(), b.questions.size()) << context;
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].index, b.questions[i].index) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].question_time, b.questions[i].question_time)
        << context << " Q" << i;
    EXPECT_EQ(a.questions[i].choice, b.questions[i].choice) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].override_time, b.questions[i].override_time)
        << context << " Q" << i;
  }
  EXPECT_EQ(a.type1_records, b.type1_records) << context;
  EXPECT_EQ(a.type2_records, b.type2_records) << context;
  EXPECT_EQ(a.other_records, b.other_records) << context;
}

/// Two interleaved viewers with distinct endpoints, merged by time.
std::vector<net::Packet> two_viewer_capture(const story::StoryGraph& graph) {
  std::vector<net::Packet> merged;
  for (std::size_t v = 0; v < 2; ++v) {
    sim::SessionConfig config;
    config.seed = 7301 + v;
    config.packetize.client_ip =
        net::Ipv4Address(10, 0, 4, static_cast<std::uint8_t>(10 + v));
    config.packetize.cdn_client_port = static_cast<std::uint16_t>(55000 + 2 * v);
    config.packetize.api_client_port = static_cast<std::uint16_t>(55001 + 2 * v);
    auto session = sim::simulate_session(graph, alternating(9), config);
    const util::Duration stagger = util::Duration::millis(900) * static_cast<int>(v);
    for (net::Packet& packet : session.capture.packets) {
      packet.timestamp += stagger;
      merged.push_back(std::move(packet));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

AttackPipeline wrapper_test_pipeline(const story::StoryGraph& graph) {
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t seed : {7311u, 7312u, 7313u}) {
    auto session = simulate(graph, sim::OperationalConditions{},
                            alternating(13), seed);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

TEST(OptionsApi, PerClientSplitsViewersAndMatchesCombined) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = wrapper_test_pipeline(graph);
  const auto packets = two_viewer_capture(graph);

  engine::VectorSource source(&packets);
  InferOptions options;
  options.per_client = true;
  const InferReport report = pipeline.infer(source, options);
  ASSERT_EQ(report.per_client.size(), 2u);

  // The per-client split is a refinement of the combined decode, not a
  // different algorithm: question totals add up.
  std::size_t split_questions = 0;
  for (const auto& [client, session] : report.per_client) {
    split_questions += session.questions.size();
  }
  EXPECT_EQ(split_questions, report.combined.questions.size());

  // And re-running without per_client yields an identical combined view.
  engine::VectorSource again(&packets);
  expect_equal_sessions(report.combined, pipeline.infer(again).combined,
                        "per_client on vs off, combined view");
}

TEST(OptionsApi, InferCaptureMatchesInMemory) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = wrapper_test_pipeline(graph);
  const auto packets = two_viewer_capture(graph);

  const auto path =
      std::filesystem::temp_directory_path() / "wm_options_equiv.pcap";
  net::write_pcap(path, packets);

  const auto via_capture = pipeline.infer_capture(path);
  ASSERT_TRUE(via_capture.ok()) << via_capture.error().to_string();
  engine::VectorSource source(&packets);
  expect_equal_sessions(via_capture->combined, pipeline.infer(source).combined,
                        "infer_capture vs infer(source)");

  // Open-time failures are typed, not thrown.
  const auto missing = pipeline.infer_capture("/nonexistent/nowhere.pcap");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
  std::filesystem::remove(path);
}

TEST(OptionsApi, SourceErrorsAreCountedNotThrown) {
  // A tap that dies mid-capture must not take the analysis down with
  // it: infer() keeps what decoded, and reports the failure through
  // EngineStats::source_errors instead of throwing.
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = wrapper_test_pipeline(graph);
  const auto packets = two_viewer_capture(graph);

  const auto path =
      std::filesystem::temp_directory_path() / "wm_truncated.pcap";
  net::write_pcap(path, packets);
  // Chop into the middle of the final record: the stream ends in a
  // typed error after most packets delivered.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 7);

  auto source = engine::open_capture(path);
  ASSERT_TRUE(source.ok()) << source.error().to_string();
  const InferReport report = pipeline.infer(**source);
  EXPECT_EQ(report.stats.source_errors, 1u);
  EXPECT_TRUE((*source)->error().has_value());
  // The healthy prefix still decoded.
  EXPECT_FALSE(report.combined.questions.empty());
  std::filesystem::remove(path);
}

TEST(OptionsApi, InferReportsIntoInstalledRegistry) {
  // A registry installed with set_metrics() observes every infer run
  // that does not override it per call.
  const story::StoryGraph graph = story::make_bandersnatch();
  AttackPipeline pipeline = wrapper_test_pipeline(graph);
  const auto packets = two_viewer_capture(graph);

  obs::Registry registry;
  pipeline.set_metrics(&registry);
  engine::VectorSource first(&packets);
  (void)pipeline.infer(first);
  engine::VectorSource second(&packets);
  InferOptions options;
  options.per_client = true;
  (void)pipeline.infer(second, options);
  pipeline.set_metrics(nullptr);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.stable.at("pipeline.infer.runs"), 2u);
  EXPECT_EQ(snap.stable.at("engine.packets_in"), packets.size() * 2);
  EXPECT_GT(snap.stable.at("pipeline.questions"), 0u);
}

TEST(BitrateBaseline, RequiresBothClasses) {
  const story::StoryGraph graph = story::make_bandersnatch();
  auto session = simulate(graph, sim::OperationalConditions{},
                          std::vector<Choice>(13, Choice::kDefault), 7201);
  BitrateBaseline baseline;
  std::vector<BitrateBaseline::Calibration> calibration;
  calibration.push_back(BitrateBaseline::Calibration{
      std::move(session.capture.packets), std::move(session.truth)});
  EXPECT_THROW(baseline.fit(calibration), std::invalid_argument);
  EXPECT_THROW((void)baseline.predict({}, {}), std::logic_error);
}

}  // namespace
}  // namespace wm::core
