// Multi-viewer captures: two viewers behind the same tap, one capture.
// The attack must separate them by client endpoint and decode each
// independently.
#include <gtest/gtest.h>

#include <algorithm>

#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::core {
namespace {

using story::Choice;

std::vector<Choice> alternating(std::size_t n, bool start_non_default) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    const bool non_default = (i % 2 == 0) == start_non_default;
    out.push_back(non_default ? Choice::kNonDefault : Choice::kDefault);
  }
  return out;
}

struct MergedCapture {
  std::vector<net::Packet> packets;
  sim::SessionGroundTruth truth_a;
  sim::SessionGroundTruth truth_b;
  std::string client_a;
  std::string client_b;
};

MergedCapture make_merged_capture(const story::StoryGraph& graph) {
  // Viewer A: default client IP.
  sim::SessionConfig config_a;
  config_a.seed = 8800;
  auto a = sim::simulate_session(graph, alternating(13, true), config_a);

  // Viewer B: different address block and ports, same LAN.
  sim::SessionConfig config_b;
  config_b.seed = 8801;
  config_b.packetize.client_ip = net::Ipv4Address(10, 0, 0, 77);
  config_b.packetize.cdn_client_port = 53342;
  config_b.packetize.api_client_port = 53343;
  auto b = sim::simulate_session(graph, alternating(13, false), config_b);

  MergedCapture merged;
  merged.truth_a = a.truth;
  merged.truth_b = b.truth;
  merged.client_a = a.capture.client_ip.to_string();
  merged.client_b = b.capture.client_ip.to_string();
  merged.packets = std::move(a.capture.packets);
  // Viewer B starts 3.2 s later; interleave by timestamp.
  for (net::Packet& packet : b.capture.packets) {
    packet.timestamp += util::Duration::millis(3200);
    merged.packets.push_back(std::move(packet));
  }
  std::stable_sort(merged.packets.begin(), merged.packets.end(),
                   [](const net::Packet& x, const net::Packet& y) {
                     return x.timestamp < y.timestamp;
                   });
  return merged;
}

AttackPipeline calibrated_pipeline(const story::StoryGraph& graph) {
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 8700 + s;
    auto session = sim::simulate_session(graph, alternating(13, true), config);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

TEST(MultiViewer, ClientsSeparatedAndDecoded) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const MergedCapture merged = make_merged_capture(graph);

  engine::VectorSource source(&merged.packets);
  InferOptions options;
  options.per_client = true;
  const auto per_client = pipeline.infer(source, options).per_client;
  ASSERT_EQ(per_client.size(), 2u);
  ASSERT_TRUE(per_client.count(merged.client_a));
  ASSERT_TRUE(per_client.count(merged.client_b));

  const SessionScore score_a =
      score_session(merged.truth_a, per_client.at(merged.client_a));
  const SessionScore score_b =
      score_session(merged.truth_b, per_client.at(merged.client_b));
  EXPECT_GE(score_a.choice_accuracy, 0.75) << "viewer A";
  EXPECT_GE(score_b.choice_accuracy, 0.75) << "viewer B";
  EXPECT_TRUE(score_a.question_count_match);
  EXPECT_TRUE(score_b.question_count_match);
}

TEST(MultiViewer, MergedDecodeWithoutSeparationGarbles) {
  // Demonstrate why separation matters: decoding the merged capture as
  // one stream confuses the question structure (type-2 of one viewer
  // attaches to type-1 of the other).
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const MergedCapture merged = make_merged_capture(graph);

  engine::VectorSource source(&merged.packets);
  const InferredSession combined = pipeline.infer(source).combined;
  const std::size_t total_truth_questions =
      merged.truth_a.questions.size() + merged.truth_b.questions.size();
  // The combined decode sees all uploads from both viewers...
  EXPECT_GE(combined.type1_records, total_truth_questions);
  // ...but cannot match either viewer's session on its own.
  const SessionScore vs_a = score_session(merged.truth_a, combined);
  EXPECT_FALSE(vs_a.question_count_match);
}

TEST(MultiViewer, NonViewerClientsFiltered) {
  // A capture with no interactive session at all: no client reported.
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);

  // Build a capture of pure cross traffic by taking a session capture
  // and dropping its CDN/API flows via a fresh simulation with zero
  // choices and no questions encountered... simplest: empty capture.
  const std::vector<net::Packet> empty;
  engine::VectorSource source(&empty);
  InferOptions options;
  options.per_client = true;
  EXPECT_TRUE(pipeline.infer(source, options).per_client.empty());
}

}  // namespace
}  // namespace wm::core
