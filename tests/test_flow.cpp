#include "wm/net/flow.hpp"

#include <gtest/gtest.h>

#include "wm/net/packet_builder.hpp"

namespace wm::net {
namespace {

Packet tcp_packet(double t, Ipv4Address src, std::uint16_t sport, Ipv4Address dst,
                  std::uint16_t dport, bool syn, bool ack,
                  std::size_t payload_size) {
  TcpHeader tcp;
  tcp.source_port = sport;
  tcp.destination_port = dport;
  tcp.sequence = 1;
  tcp.syn = syn;
  tcp.ack = ack;
  const util::Bytes payload(payload_size, 0x5a);
  return build_tcp_packet(util::SimTime::from_seconds(t),
                          *MacAddress::parse("02:00:00:00:00:01"),
                          *MacAddress::parse("02:00:00:00:00:02"), src, dst, tcp,
                          payload, 1);
}

const Ipv4Address kClient(10, 0, 0, 2);
const Ipv4Address kServer(198, 51, 100, 1);

TEST(FlowTable, SynEstablishesClientOrientation) {
  FlowTable table;
  const auto decoded =
      decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, true, false, 0));
  ASSERT_TRUE(decoded.has_value());
  const auto assignment = table.add(*decoded, 0);
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(assignment->direction, FlowDirection::kClientToServer);
  EXPECT_EQ(assignment->key.client.port, 50000);
  EXPECT_EQ(assignment->key.server.port, 443);

  // Reply maps to the same flow, opposite direction.
  const auto reply =
      decode_packet(tcp_packet(0.1, kServer, 443, kClient, 50000, true, true, 0));
  const auto reply_assignment = table.add(*reply, 1);
  ASSERT_TRUE(reply_assignment.has_value());
  EXPECT_EQ(reply_assignment->key, assignment->key);
  EXPECT_EQ(reply_assignment->direction, FlowDirection::kServerToClient);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, MidStreamServicePortHeuristic) {
  FlowTable table;
  // First observed packet comes FROM the server (mid-capture).
  const auto decoded =
      decode_packet(tcp_packet(0.0, kServer, 443, kClient, 50001, false, true, 100));
  const auto assignment = table.add(*decoded, 0);
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(assignment->direction, FlowDirection::kServerToClient);
  EXPECT_EQ(assignment->key.client.port, 50001);
}

TEST(FlowTable, ByteCountsPerDirection) {
  FlowTable table;
  table.add(*decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, true, false, 0)), 0);
  table.add(*decode_packet(tcp_packet(0.2, kClient, 50000, kServer, 443, false, true, 120)), 1);
  table.add(*decode_packet(tcp_packet(0.3, kServer, 443, kClient, 50000, false, true, 4000)), 2);

  ASSERT_EQ(table.size(), 1u);
  const FlowRecord& flow = table.flows().begin()->second;
  EXPECT_EQ(flow.client_bytes, 120u);
  EXPECT_EQ(flow.server_bytes, 4000u);
  EXPECT_EQ(flow.total_bytes(), 4120u);
  EXPECT_EQ(flow.packets.size(), 3u);
  EXPECT_TRUE(flow.saw_syn);
  EXPECT_DOUBLE_EQ(flow.duration().to_seconds(), 0.3);
}

TEST(FlowTable, DistinctFlowsSeparated) {
  FlowTable table;
  table.add(*decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, true, false, 0)), 0);
  table.add(*decode_packet(tcp_packet(0.1, kClient, 50001, kServer, 443, true, false, 0)), 1);
  table.add(*decode_packet(
                tcp_packet(0.2, kClient, 50000, Ipv4Address(1, 2, 3, 4), 443, true, false, 0)),
            2);
  EXPECT_EQ(table.size(), 3u);
}

TEST(FlowTable, ByVolumeOrdering) {
  FlowTable table;
  table.add(*decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, false, true, 10)), 0);
  table.add(*decode_packet(tcp_packet(0.1, kClient, 50001, kServer, 443, false, true, 5000)), 1);
  const auto ordered = table.by_volume();
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_GE(ordered[0]->total_bytes(), ordered[1]->total_bytes());
  EXPECT_EQ(ordered[0]->key.client.port, 50001);
}

TEST(FlowKey, StringRendering) {
  const auto decoded =
      decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, true, false, 0));
  FlowTable table;
  const auto assignment = table.add(*decoded, 0);
  const std::string text = assignment->key.to_string();
  EXPECT_NE(text.find("10.0.0.2:50000"), std::string::npos);
  EXPECT_NE(text.find("198.51.100.1:443"), std::string::npos);
  EXPECT_NE(text.find("TCP"), std::string::npos);
}

TEST(PacketEndpoints, NonTransportPacketsRejected) {
  // An ARP frame decodes to nullopt entirely.
  util::ByteWriter writer;
  EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  eth.serialize(writer);
  writer.write_repeated(0, 28);
  Packet arp(util::SimTime::from_seconds(0), writer.take());
  EXPECT_FALSE(decode_packet(arp).has_value());
}

TEST(DecodedPacket, SummaryContainsEssentials) {
  const auto decoded =
      decode_packet(tcp_packet(1.5, kClient, 50000, kServer, 443, true, false, 0));
  const std::string summary = decoded->summary();
  EXPECT_NE(summary.find("t=1.500s"), std::string::npos);
  EXPECT_NE(summary.find("SYN"), std::string::npos);
  EXPECT_NE(summary.find("10.0.0.2:50000"), std::string::npos);
}

TEST(FlowTableEviction, IdleFlowsEvictedActiveFlowsKept) {
  FlowTable::Config config;
  config.idle_timeout = util::Duration::seconds(10);
  FlowTable table(config);

  const auto idle =
      decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, true, false, 0));
  const auto busy =
      decode_packet(tcp_packet(0.0, kClient, 50001, kServer, 443, true, false, 0));
  table.add(*idle, 0);
  const auto busy_key = table.add(*busy, 1)->key;

  // Keep the second flow alive past the first one's deadline.
  const auto refresh =
      decode_packet(tcp_packet(9.0, kClient, 50001, kServer, 443, false, true, 64));
  table.add(*refresh, 2);

  const auto evicted = table.evict_idle(util::SimTime::from_seconds(12.0));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].client.port, 50000);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_NE(table.find(busy_key), nullptr);
  EXPECT_EQ(table.flows_evicted(), 1u);

  // A flow exactly at the threshold survives; strictly-older goes.
  EXPECT_TRUE(table.evict_idle(util::SimTime::from_seconds(19.0)).empty());
  EXPECT_EQ(table.evict_idle(util::SimTime::from_seconds(19.5)).size(), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableEviction, ZeroTimeoutNeverEvicts) {
  FlowTable table;  // default config: idle_timeout zero
  const auto decoded =
      decode_packet(tcp_packet(0.0, kClient, 50000, kServer, 443, true, false, 0));
  table.add(*decoded, 0);
  EXPECT_TRUE(table.evict_idle(util::SimTime::from_seconds(1e6)).empty());
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableEviction, TrackPacketsOffKeepsAggregatesOnly) {
  FlowTable::Config config;
  config.track_packets = false;
  FlowTable table(config);
  for (int i = 0; i < 5; ++i) {
    const auto decoded = decode_packet(
        tcp_packet(0.1 * i, kClient, 50000, kServer, 443, i == 0, i > 0, 100));
    table.add(*decoded, static_cast<std::size_t>(i));
  }
  ASSERT_EQ(table.size(), 1u);
  const FlowRecord& flow = table.flows().begin()->second;
  EXPECT_TRUE(flow.packets.empty());
  EXPECT_EQ(flow.client_bytes, 500u);  // aggregates still accumulate
  EXPECT_EQ(flow.last_seen, util::SimTime::from_seconds(0.4));
}

TEST(FlowShardHash, DirectionSymmetricAndFlowDistinct) {
  const Packet forward = tcp_packet(0.0, kClient, 50000, kServer, 443, false, true, 10);
  const Packet reverse = tcp_packet(0.1, kServer, 443, kClient, 50000, false, true, 10);
  const Packet other = tcp_packet(0.2, kClient, 50001, kServer, 443, false, true, 10);

  const auto ha = flow_shard_hash(forward);
  const auto hb = flow_shard_hash(reverse);
  const auto hc = flow_shard_hash(other);
  ASSERT_TRUE(ha && hb && hc);
  EXPECT_EQ(*ha, *hb);  // both directions land on the same shard
  EXPECT_NE(*ha, *hc);  // sibling flow (port+1) lands elsewhere

  // Non-transport frames get no hash (the dispatcher routes them to a
  // fixed shard instead).
  util::ByteWriter writer;
  EthernetHeader eth;
  eth.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  eth.serialize(writer);
  writer.write_repeated(0, 28);
  const Packet arp(util::SimTime::from_seconds(0), writer.take());
  EXPECT_FALSE(flow_shard_hash(arp).has_value());
}

}  // namespace
}  // namespace wm::net
