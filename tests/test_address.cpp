#include "wm/net/address.hpp"

#include <gtest/gtest.h>

namespace wm::net {
namespace {

TEST(MacAddress, ParseAndFormat) {
  const auto mac = MacAddress::parse("02:42:ac:11:00:02");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:42:ac:11:00:02");
  EXPECT_EQ(MacAddress::parse("02-42-AC-11-00-02")->to_string(),
            "02:42:ac:11:00:02");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("02:42:ac:11:00").has_value());
  EXPECT_FALSE(MacAddress::parse("02:42:ac:11:00:02:03").has_value());
  EXPECT_FALSE(MacAddress::parse("gg:42:ac:11:00:02").has_value());
  EXPECT_FALSE(MacAddress::parse("0242:ac:11:00:02").has_value());
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(MacAddress::parse("ff:ff:ff:ff:ff:ff")->is_broadcast());
  EXPECT_FALSE(MacAddress::parse("ff:ff:ff:ff:ff:fe")->is_broadcast());
}

TEST(Ipv4Address, ParseAndFormat) {
  const auto addr = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "192.168.1.200");
  EXPECT_EQ(addr->value(), 0xc0a801c8u);
  EXPECT_EQ(Ipv4Address(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.1234").has_value());
}

TEST(Ipv4Address, Classification) {
  EXPECT_TRUE(Ipv4Address::parse("10.1.2.3")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("192.168.0.1")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("172.16.0.1")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("172.31.255.255")->is_private());
  EXPECT_FALSE(Ipv4Address::parse("172.32.0.1")->is_private());
  EXPECT_FALSE(Ipv4Address::parse("8.8.8.8")->is_private());
  EXPECT_TRUE(Ipv4Address::parse("127.0.0.1")->is_loopback());
  EXPECT_FALSE(Ipv4Address::parse("128.0.0.1")->is_loopback());
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(*Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"));
}

TEST(Ipv6Address, ParseFullForm) {
  const auto addr =
      Ipv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "2001:db8::1");
}

TEST(Ipv6Address, ParseCompressed) {
  EXPECT_EQ(Ipv6Address::parse("::1")->to_string(), "::1");
  EXPECT_EQ(Ipv6Address::parse("::")->to_string(), "::");
  EXPECT_EQ(Ipv6Address::parse("fe80::1")->to_string(), "fe80::1");
  EXPECT_EQ(Ipv6Address::parse("2001:db8::8:800:200c:417a")->to_string(),
            "2001:db8::8:800:200c:417a");
}

TEST(Ipv6Address, CompressesLongestZeroRun) {
  // Two zero runs: 1:0:0:2:0:0:0:3 -> compress the longer (second) one.
  EXPECT_EQ(Ipv6Address::parse("1:0:0:2:0:0:0:3")->to_string(), "1:0:0:2::3");
}

TEST(Ipv6Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Address::parse("").has_value());
  EXPECT_FALSE(Ipv6Address::parse(":::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(Ipv6Address::parse("1::2::3").has_value());
  EXPECT_FALSE(Ipv6Address::parse("12345::").has_value());
  EXPECT_FALSE(Ipv6Address::parse("gggg::").has_value());
  // :: present but already 8 groups.
  EXPECT_FALSE(Ipv6Address::parse("1:2:3:4:5:6:7:8::").has_value());
}

TEST(Ipv6Address, Loopback) {
  EXPECT_TRUE(Ipv6Address::parse("::1")->is_loopback());
  EXPECT_FALSE(Ipv6Address::parse("::2")->is_loopback());
  EXPECT_FALSE(Ipv6Address::parse("1::1")->is_loopback());
}

TEST(Ipv6Address, RoundTripThroughOctets) {
  const auto addr = Ipv6Address::parse("2001:db8:a0b:12f0::1");
  ASSERT_TRUE(addr.has_value());
  const Ipv6Address copy(addr->octets());
  EXPECT_EQ(copy, *addr);
  EXPECT_EQ(copy.to_string(), "2001:db8:a0b:12f0::1");
}

}  // namespace
}  // namespace wm::net
