#include "wm/util/stats.hpp"

#include <gtest/gtest.h>

namespace wm::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 10;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Quantile, EmptyReturnsNullopt) {
  EXPECT_FALSE(quantile({}, 0.5).has_value());
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(*quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(*quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(*quantile(values, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values{0.0, 10.0};
  EXPECT_DOUBLE_EQ(*quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(*quantile(values, 0.3), 3.0);
}

TEST(IntHistogram, CountsAndRanges) {
  IntHistogram hist;
  hist.add(2211);
  hist.add(2212, 3);
  hist.add(2213);
  hist.add(3000);
  EXPECT_EQ(hist.total(), 6u);
  EXPECT_EQ(hist.count_of(2212), 3u);
  EXPECT_EQ(hist.count_of(9999), 0u);
  EXPECT_EQ(hist.count_in(2211, 2213), 5u);
  EXPECT_EQ(hist.count_in(2214, 2999), 0u);
  EXPECT_EQ(*hist.min(), 2211);
  EXPECT_EQ(*hist.max(), 3000);
  EXPECT_EQ(*hist.mode(), 2212);
}

TEST(IntHistogram, EmptyBehaviour) {
  IntHistogram hist;
  EXPECT_FALSE(hist.min().has_value());
  EXPECT_FALSE(hist.max().has_value());
  EXPECT_FALSE(hist.mode().has_value());
  EXPECT_FALSE(covering_interval(hist).has_value());
}

TEST(IntInterval, ContainsAndOverlaps) {
  const IntInterval a{10, 20};
  EXPECT_TRUE(a.contains(10));
  EXPECT_TRUE(a.contains(20));
  EXPECT_FALSE(a.contains(9));
  EXPECT_TRUE(a.overlaps({20, 30}));
  EXPECT_TRUE(a.overlaps({0, 10}));
  EXPECT_FALSE(a.overlaps({21, 30}));
  EXPECT_EQ(a.to_string(), "10-20");
  EXPECT_EQ((IntInterval{7, 7}).to_string(), "7");
}

TEST(ConfusionMatrix, AccuracyAndPerClass) {
  ConfusionMatrix m({"a", "b", "c"});
  m.add(0, 0, 8);
  m.add(0, 2, 2);
  m.add(1, 1, 5);
  m.add(2, 1, 1);
  m.add(2, 2, 4);
  EXPECT_EQ(m.total(), 20u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.recall(0), 0.8);
  EXPECT_DOUBLE_EQ(m.precision(1), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(m.precision(2), 4.0 / 6.0);
  EXPECT_GT(m.f1(0), 0.8);
}

TEST(ConfusionMatrix, EmptyAccuracyIsOne) {
  ConfusionMatrix m({"x", "y"});
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(0), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.0);
}

TEST(ConfusionMatrix, BoundsChecked) {
  ConfusionMatrix m({"x"});
  EXPECT_THROW(m.add(0, 1), std::out_of_range);
  EXPECT_THROW((void)m.at(1, 0), std::out_of_range);
  EXPECT_THROW(ConfusionMatrix({}), std::invalid_argument);
}

TEST(ConfusionMatrix, RendersLabels) {
  ConfusionMatrix m({"type-1", "type-2", "others"});
  m.add(0, 0);
  const std::string text = m.to_string();
  EXPECT_NE(text.find("type-1"), std::string::npos);
  EXPECT_NE(text.find("others"), std::string::npos);
}

}  // namespace
}  // namespace wm::util
