// VLAN decoding, IPv6 end-to-end (builder -> decode -> flow ->
// reassembly -> TLS records), the network model, and parser fuzzing.
#include <gtest/gtest.h>

#include "wm/net/checksum.hpp"
#include "wm/net/packet_builder.hpp"
#include "wm/sim/netmodel.hpp"
#include "wm/tls/record.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/util/rng.hpp"
#include "wm/util/stats.hpp"

namespace wm::net {
namespace {

const MacAddress kMacA = *MacAddress::parse("02:00:00:00:00:01");
const MacAddress kMacB = *MacAddress::parse("02:00:00:00:00:02");

TEST(Vlan, TaggedFrameDecodes) {
  // Build a normal IPv4/TCP frame, then splice in an 802.1Q tag.
  TcpHeader tcp;
  tcp.source_port = 50000;
  tcp.destination_port = 443;
  tcp.sequence = 1;
  const util::Bytes payload = {0x01, 0x02, 0x03};
  Packet packet = build_tcp_packet(util::SimTime::from_seconds(1.0), kMacA, kMacB,
                                   Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                   tcp, payload, 7);

  util::Bytes tagged(packet.data.begin(), packet.data.begin() + 12);
  tagged.push_back(0x81);  // 802.1Q TPID
  tagged.push_back(0x00);
  tagged.push_back(0x00);  // PCP/DEI/VID high bits
  tagged.push_back(0x2a);  // VID = 42
  tagged.insert(tagged.end(), packet.data.begin() + 12, packet.data.end());
  Packet vlan_packet(packet.timestamp, std::move(tagged));

  const auto decoded = decode_packet(vlan_packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->vlan_id, 42);
  ASSERT_TRUE(decoded->has_tcp());
  EXPECT_EQ(decoded->tcp().destination_port, 443);
  EXPECT_EQ(decoded->transport_payload.size(), 3u);
}

TEST(Vlan, TruncatedTagRejected) {
  util::Bytes frame(14, 0);
  frame[12] = 0x81;
  frame[13] = 0x00;
  frame.push_back(0x00);  // only 1 byte of tag
  Packet packet(util::SimTime::from_seconds(0), std::move(frame));
  EXPECT_FALSE(decode_packet(packet).has_value());
}

TEST(Ipv6Path, BuilderPacketDecodes) {
  TcpHeader tcp;
  tcp.source_port = 51000;
  tcp.destination_port = 443;
  tcp.sequence = 100;
  tcp.syn = true;
  const auto src = *Ipv6Address::parse("2001:db8::10");
  const auto dst = *Ipv6Address::parse("2001:db8::443");
  const Packet packet = build_tcp_packet_v6(util::SimTime::from_seconds(0.5), kMacA,
                                            kMacB, src, dst, tcp, {});
  const auto decoded = decode_packet(packet);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->has_ipv6());
  EXPECT_EQ(decoded->ipv6().source, src);
  ASSERT_TRUE(decoded->has_tcp());
  EXPECT_TRUE(decoded->tcp().syn);

  // Transport checksum verifies over the v6 pseudo-header.
  const auto eth = parse_ethernet(packet.data);
  const auto ip = parse_ipv6(eth->payload);
  const std::uint16_t check = transport_checksum_v6(
      ip->header.source, ip->header.destination,
      IpProtocolValue{static_cast<std::uint8_t>(IpProtocol::kTcp)}, ip->payload);
  EXPECT_EQ(check, 0);
}

TEST(Ipv6Path, FlowAndRecordExtractionEndToEnd) {
  // A whole TLS exchange over IPv6: records survive the v6 pipeline.
  const auto client_ip = *Ipv6Address::parse("2001:db8::10");
  const auto server_ip = *Ipv6Address::parse("2606:2800:21f::1");

  auto v6_segment = [&](bool from_client, std::uint32_t seq, bool syn,
                        util::BytesView payload, double t) {
    TcpHeader tcp;
    tcp.source_port = from_client ? 51000 : 443;
    tcp.destination_port = from_client ? 443 : 51000;
    tcp.sequence = seq;
    tcp.syn = syn;
    tcp.ack = !syn;
    return build_tcp_packet_v6(util::SimTime::from_seconds(t), kMacA, kMacB,
                               from_client ? client_ip : server_ip,
                               from_client ? server_ip : client_ip, tcp, payload);
  };

  tls::TlsRecord record;
  record.content_type = tls::ContentType::kApplicationData;
  record.payload = util::Bytes(2212 - 5, 0x5a);  // wire length field 2207
  const util::Bytes wire = tls::serialize_records({record});

  std::vector<Packet> packets;
  packets.push_back(v6_segment(true, 100, true, {}, 0.0));
  packets.push_back(v6_segment(false, 500, true, {}, 0.01));
  // Split the record across two segments.
  const std::size_t half = wire.size() / 2;
  packets.push_back(
      v6_segment(true, 101, false, util::BytesView(wire).subspan(0, half), 0.1));
  packets.push_back(v6_segment(
      true, static_cast<std::uint32_t>(101 + half), false,
      util::BytesView(wire).subspan(half), 0.2));

  const auto streams = tls::extract_record_streams(packets);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_TRUE(streams[0].flow.client.is_v6);
  EXPECT_EQ(streams[0].flow.client.to_string(), "[2001:db8::10]:51000");
  ASSERT_EQ(streams[0].events.size(), 1u);
  EXPECT_EQ(streams[0].events[0].record_length, record.payload.size());
  EXPECT_TRUE(streams[0].events[0].is_client_application_data());
}

TEST(DecodeFuzz, RandomBytesNeverCrash) {
  util::Rng rng(0xf022);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t size = static_cast<std::size_t>(rng.next_below(200));
    util::Bytes data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    // Seed plausible ethertypes half the time to reach deeper code.
    if (size >= 14 && rng.bernoulli(0.5)) {
      data[12] = 0x08;
      data[13] = rng.bernoulli(0.5) ? 0x00 : 0xdd;
      if (data[13] == 0xdd) data[12] = 0x86;
    }
    Packet packet(util::SimTime::from_seconds(0), std::move(data));
    (void)decode_packet(packet);  // must not throw or crash
  }
}

}  // namespace
}  // namespace wm::net

namespace wm::sim {
namespace {

TEST(NetworkModel, ParamsReflectConditions) {
  OperationalConditions wired;
  OperationalConditions wireless = wired;
  wireless.connection = ConnectionType::kWireless;
  const auto p_wired = NetworkModel::params_for(wired);
  const auto p_wireless = NetworkModel::params_for(wireless);
  EXPECT_LT(p_wired.base_rtt, p_wireless.base_rtt);
  EXPECT_LT(p_wired.loss_rate, p_wireless.loss_rate);
  EXPECT_GT(p_wired.bandwidth_mbps, p_wireless.bandwidth_mbps);

  OperationalConditions night = wired;
  night.traffic = TrafficCondition::kNight;
  EXPECT_GT(NetworkModel::params_for(night).load_factor,
            NetworkModel::params_for(wired).load_factor);
}

TEST(NetworkModel, DelaysPositiveAndPlausible) {
  NetworkModel model(NetworkModel::params_for(OperationalConditions{}),
                     util::Rng(5));
  util::RunningStats stats;
  for (int i = 0; i < 2000; ++i) {
    const double d = model.sample_one_way_delay().to_seconds();
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 0.5);
    stats.add(d);
  }
  // Mean near half the base RTT.
  EXPECT_NEAR(stats.mean(), 0.007, 0.003);
}

TEST(NetworkModel, TransmissionTimeScalesWithBytes) {
  NetworkModel model(NetworkModel::params_for(OperationalConditions{}),
                     util::Rng(6));
  const double t1 = model.transmission_time(1500).to_seconds();
  const double t10 = model.transmission_time(15000).to_seconds();
  EXPECT_NEAR(t10 / t1, 10.0, 0.01);
}

TEST(NetworkModel, LossRateRoughlyHonoured) {
  NetworkModel::Params params;
  params.loss_rate = 0.05;
  NetworkModel model(params, util::Rng(7));
  int losses = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) losses += model.lose_segment() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(losses) / n, 0.05, 0.01);
}

TEST(CrossTraffic, PlanScalesWithTimeOfDay) {
  util::Rng rng(8);
  std::size_t noon_total = 0;
  std::size_t night_total = 0;
  for (int i = 0; i < 20; ++i) {
    noon_total += make_cross_traffic_plan(TrafficCondition::kNoon, rng).size();
    night_total += make_cross_traffic_plan(TrafficCondition::kNight, rng).size();
  }
  EXPECT_GT(night_total, noon_total);
}

}  // namespace
}  // namespace wm::sim
