#include "wm/util/bytes.hpp"

#include <gtest/gtest.h>

namespace wm::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x16, 0x03, 0xff, 0xab};
  EXPECT_EQ(to_hex(data), "001603ffab");
  EXPECT_EQ(from_hex("001603ffab"), data);
  EXPECT_EQ(from_hex("00 16 03 ff ab"), data);
  EXPECT_EQ(from_hex("0016 03FF AB"), data);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
  EXPECT_THROW(from_hex("012"), std::invalid_argument);
}

TEST(Bytes, FromHexEmpty) { EXPECT_TRUE(from_hex("").empty()); }

TEST(Bytes, HexDumpShape) {
  Bytes data(20, 0x41);  // 'A'
  const std::string dump = hex_dump(data);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("00000010"), std::string::npos);
  EXPECT_NE(dump.find("AAAA"), std::string::npos);  // ASCII gutter
}

TEST(ByteReader, ReadsBigEndian) {
  const Bytes data = from_hex("0102030405060708");
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u16_be(), 0x0102);
  EXPECT_EQ(reader.read_u24_be(), 0x030405u);
  EXPECT_EQ(reader.read_u8(), 0x06);
  EXPECT_EQ(reader.remaining(), 2u);
}

TEST(ByteReader, ReadsLittleEndian) {
  const Bytes data = from_hex("d4c3b2a10100");
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u32_le(), 0xa1b2c3d4u);
  EXPECT_EQ(reader.read_u16_le(), 0x0001);
}

TEST(ByteReader, Reads64Bit) {
  const Bytes data = from_hex("0102030405060708" "0807060504030201");
  ByteReader reader(data);
  EXPECT_EQ(reader.read_u64_be(), 0x0102030405060708ull);
  EXPECT_EQ(reader.read_u64_le(), 0x0102030405060708ull);
}

TEST(ByteReader, BoundsChecked) {
  const Bytes data = {0x01, 0x02};
  ByteReader reader(data);
  (void)reader.read_u16_be();
  EXPECT_THROW((void)reader.read_u8(), OutOfBoundsError);
  EXPECT_TRUE(reader.at_end());
}

TEST(ByteReader, BoundsErrorCarriesCounts) {
  const Bytes data = {0x01};
  ByteReader reader(data);
  try {
    (void)reader.read_u32_be();
    FAIL() << "expected OutOfBoundsError";
  } catch (const OutOfBoundsError& e) {
    EXPECT_EQ(e.requested(), 4u);
    EXPECT_EQ(e.available(), 1u);
  }
}

TEST(ByteReader, SeekAndSkip) {
  const Bytes data = from_hex("00112233445566");
  ByteReader reader(data);
  reader.skip(2);
  EXPECT_EQ(reader.read_u8(), 0x22);
  reader.seek(0);
  EXPECT_EQ(reader.read_u8(), 0x00);
  EXPECT_THROW(reader.seek(8), OutOfBoundsError);
  EXPECT_THROW(reader.skip(10), OutOfBoundsError);
}

TEST(ByteReader, PeekDoesNotAdvance) {
  const Bytes data = from_hex("1603");
  ByteReader reader(data);
  EXPECT_EQ(reader.peek_u8(), 0x16);
  EXPECT_EQ(reader.peek_u16_be(), 0x1603);
  EXPECT_EQ(reader.position(), 0u);
}

TEST(ByteReader, ViewsBorrowWithoutCopy) {
  const Bytes data = from_hex("aabbccdd");
  ByteReader reader(data);
  const BytesView view = reader.read_view(2);
  EXPECT_EQ(view.data(), data.data());
  EXPECT_EQ(view.size(), 2u);
}

TEST(ByteWriter, WritesAllWidths) {
  ByteWriter writer;
  writer.write_u8(0x01);
  writer.write_u16_be(0x0203);
  writer.write_u24_be(0x040506);
  writer.write_u32_be(0x0708090a);
  writer.write_u16_le(0x0c0b);
  writer.write_u32_le(0x100f0e0d);
  writer.write_u64_be(0x1112131415161718ull);
  EXPECT_EQ(to_hex(writer.view()),
            "0102030405060708090a0b0c0d0e0f101112131415161718");
}

TEST(ByteWriter, PatchLengthField) {
  ByteWriter writer;
  writer.write_u8(0x16);
  writer.write_u16_be(0x0303);
  writer.write_u16_be(0);  // placeholder
  writer.write_repeated(0xaa, 5);
  writer.patch_u16_be(3, 5);
  EXPECT_EQ(to_hex(writer.view()), "1603030005aaaaaaaaaa");
  EXPECT_THROW(writer.patch_u16_be(9, 1), OutOfBoundsError);
}

TEST(ByteWriter, TakeResets) {
  ByteWriter writer;
  writer.write_u32_be(42);
  const Bytes taken = writer.take();
  EXPECT_EQ(taken.size(), 4u);
  EXPECT_EQ(writer.size(), 0u);
}

}  // namespace
}  // namespace wm::util
