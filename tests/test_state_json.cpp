// State-document generation: schema, exact sizing, and presence of the
// real serialized documents in the simulated trace.
#include <gtest/gtest.h>

#include "wm/sim/http.hpp"
#include "wm/sim/state_json.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::sim {
namespace {

PlaybackIdentity test_identity() {
  util::Rng rng(7);
  return PlaybackIdentity::sample(rng);
}

TEST(StateJson, Type1SchemaAndExactSize) {
  const auto identity = test_identity();
  const auto doc = make_type1_state(identity, 3, "STREET_SPLIT",
                                    util::SimTime::from_seconds(412.5), 2188);
  EXPECT_EQ(serialized_size(doc), 2188u);
  EXPECT_EQ(doc.at("event").as_string(), "interactiveStateSnapshot");
  EXPECT_EQ(doc.at("questionIndex").as_int(), 3);
  EXPECT_EQ(doc.at("segment").as_string(), "STREET_SPLIT");
  EXPECT_EQ(doc.at("positionMs").as_int(), 412'500);
  EXPECT_EQ(doc.at("movieId").as_int(), 80988062);
  EXPECT_EQ(doc.at("esn").as_string(), identity.esn);
  // The padded document is still valid JSON that round-trips.
  EXPECT_EQ(util::JsonValue::parse(serialize_state(doc)), doc);
}

TEST(StateJson, Type2SchemaAndExactSize) {
  const auto identity = test_identity();
  const auto doc =
      make_type2_state(identity, 5, "Follow Colin", "COLINS_FLAT",
                       util::SimTime::from_seconds(500.0), 2994);
  EXPECT_EQ(serialized_size(doc), 2994u);
  EXPECT_EQ(doc.at("event").as_string(), "interactiveChoiceOverride");
  EXPECT_EQ(doc.at("choice").at("label").as_string(), "Follow Colin");
  EXPECT_FALSE(doc.at("choice").at("isDefault").as_bool());
  EXPECT_EQ(doc.at("choice").at("nextSegment").as_string(), "COLINS_FLAT");
  EXPECT_TRUE(doc.at("discardedPrefetch").as_bool());
}

TEST(StateJson, UnattainableTargetReturnsBaseDocument) {
  const auto identity = test_identity();
  const auto doc = make_type1_state(identity, 1, "X",
                                    util::SimTime::from_seconds(1.0), 10);
  EXPECT_GT(serialized_size(doc), 10u);  // base document is bigger
  EXPECT_TRUE(doc.contains("impressionData"));
}

TEST(StateJson, SizesAreMonotoneInTarget) {
  const auto identity = test_identity();
  std::size_t previous = 0;
  for (std::size_t target : {1000u, 2000u, 2188u, 3000u, 8000u}) {
    const auto doc = make_type1_state(identity, 1, "SEG",
                                      util::SimTime::from_seconds(0.0), target);
    EXPECT_EQ(serialized_size(doc), target);
    EXPECT_GT(serialized_size(doc), previous);
    previous = serialized_size(doc);
  }
}

TEST(StateJson, IdentitiesDiffer) {
  util::Rng rng(1);
  const auto a = PlaybackIdentity::sample(rng);
  const auto b = PlaybackIdentity::sample(rng);
  EXPECT_NE(a.session_id, b.session_id);
  EXPECT_NE(a.esn, b.esn);
  EXPECT_NE(a.profile_guid, b.profile_guid);
  EXPECT_EQ(a.esn.substr(0, 10), "NFCDIE-03-");
}

TEST(StateJson, TraceCarriesParsableDocuments) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  StreamingConfig config;
  util::Rng rng(11);
  const AppTrace trace = simulate_app_trace(
      graph, std::vector<story::Choice>(13, story::Choice::kNonDefault), profile,
      config, rng);

  std::size_t type1 = 0;
  std::size_t type2 = 0;
  for (const AppEvent& event : trace.events) {
    if (!event.from_client) continue;
    if (event.client_kind == ClientMessageKind::kType1Json) {
      ++type1;
      ASSERT_FALSE(event.state_json.empty());
      const auto post = parse_http_request(event.state_json);
      ASSERT_TRUE(post.has_value());
      EXPECT_EQ(post->method, "POST");
      const auto doc = util::JsonValue::parse(post->body);
      EXPECT_EQ(doc.at("event").as_string(), "interactiveStateSnapshot");
      EXPECT_EQ(static_cast<std::size_t>(doc.at("questionIndex").as_int()),
                event.question_index);
      EXPECT_EQ(event.state_json.size(), event.plaintext_size);
    } else if (event.client_kind == ClientMessageKind::kType2Json) {
      ++type2;
      ASSERT_FALSE(event.state_json.empty());
      const auto post = parse_http_request(event.state_json);
      ASSERT_TRUE(post.has_value());
      const auto doc = util::JsonValue::parse(post->body);
      EXPECT_EQ(doc.at("event").as_string(), "interactiveChoiceOverride");
      EXPECT_EQ(event.state_json.size(), event.plaintext_size);
    }
  }
  EXPECT_GT(type1, 0u);
  EXPECT_GT(type2, 0u);
}

TEST(StateJson, SizesStayInsideProfileBands) {
  // Padding to the sampled target must keep documents in the Fig. 2
  // bands (the whole point of the narrow-band phenomenon).
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  StreamingConfig config;
  util::Rng rng(13);
  const AppTrace trace = simulate_app_trace(
      graph, std::vector<story::Choice>(13, story::Choice::kNonDefault), profile,
      config, rng);
  for (const AppEvent& event : trace.events) {
    if (!event.from_client) continue;
    if (event.client_kind == ClientMessageKind::kType1Json) {
      EXPECT_GE(event.plaintext_size, profile.type1_plaintext.base);
      EXPECT_LE(event.plaintext_size, profile.type1_plaintext.max());
    } else if (event.client_kind == ClientMessageKind::kType2Json) {
      EXPECT_GE(event.plaintext_size, profile.type2_plaintext.base);
      EXPECT_LE(event.plaintext_size, profile.type2_plaintext.max());
    }
  }
}

}  // namespace
}  // namespace wm::sim
