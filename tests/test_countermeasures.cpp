// Countermeasure transforms and the residual timing attack (§VI).
#include <gtest/gtest.h>

#include "wm/counter/eval.hpp"
#include "wm/counter/timing_attack.hpp"
#include "wm/counter/transforms.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::counter {
namespace {

using sim::ClientMessageKind;
using story::Choice;

TEST(Transforms, IdentityPassesThrough) {
  const auto t = identity_transform();
  EXPECT_EQ(t(ClientMessageKind::kType1Json, 2188),
            std::vector<std::size_t>{2188});
}

TEST(Transforms, PadToBucketRoundsUp) {
  const auto t = pad_to_bucket(1024);
  EXPECT_EQ(t(ClientMessageKind::kType1Json, 2188),
            std::vector<std::size_t>{3072});
  EXPECT_EQ(t(ClientMessageKind::kType2Json, 3000),
            std::vector<std::size_t>{3072});  // both JSONs collide
  EXPECT_EQ(t(ClientMessageKind::kTelemetry, 1024),
            std::vector<std::size_t>{1024});  // exact multiple unchanged
  EXPECT_EQ(t(ClientMessageKind::kTelemetry, 0), std::vector<std::size_t>{1024});
  EXPECT_THROW(pad_to_bucket(0), std::invalid_argument);
}

TEST(Transforms, SplitKeepsLeakyTail) {
  const auto t = split_records(1024);
  const auto pieces = t(ClientMessageKind::kType1Json, 2188);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], 1024u);
  EXPECT_EQ(pieces[1], 1024u);
  EXPECT_EQ(pieces[2], 140u);  // 2188 mod 1024 — still distinguishable!
  std::size_t total = 0;
  for (std::size_t p : pieces) total += p;
  EXPECT_EQ(total, 2188u);
  EXPECT_THROW(split_records(0), std::invalid_argument);
}

TEST(Transforms, SplitAndPadRemovesTail) {
  const auto t = split_and_pad(1024);
  const auto a = t(ClientMessageKind::kType1Json, 2188);
  const auto b = t(ClientMessageKind::kType2Json, 3000);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t p : a) EXPECT_EQ(p, 1024u);
  for (std::size_t p : b) EXPECT_EQ(p, 1024u);
  EXPECT_EQ(t(ClientMessageKind::kTelemetry, 0).size(), 1u);
  EXPECT_THROW(split_and_pad(0), std::invalid_argument);
}

TEST(Transforms, CompressShrinksDeterministically) {
  const auto t = compress(0.5, 0.1);
  const auto a = t(ClientMessageKind::kType1Json, 2188);
  const auto b = t(ClientMessageKind::kType1Json, 2188);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a, b);  // deterministic per size
  EXPECT_LT(a[0], 2188u);
  EXPECT_GE(a[0], 64u);
  EXPECT_THROW(compress(0.0), std::invalid_argument);
  EXPECT_THROW(compress(1.5), std::invalid_argument);
}

TEST(Transforms, CompressFloorsTinyPayloads) {
  const auto t = compress(0.3, 0.0);
  EXPECT_EQ(t(ClientMessageKind::kTelemetry, 10), std::vector<std::size_t>{64});
}

// --- end-to-end countermeasure evaluation -------------------------------

class CountermeasureEndToEnd : public ::testing::Test {
 protected:
  static CountermeasureEvalConfig small_config() {
    CountermeasureEvalConfig config;
    config.calibration_sessions = 3;
    config.eval_sessions = 3;
    config.seed = 424242;
    return config;
  }
};

TEST_F(CountermeasureEndToEnd, NoCountermeasureAttackWins) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto run = evaluate_countermeasure(graph, "none", identity_transform(),
                                           small_config());
  EXPECT_FALSE(run.classifier_bands_overlap);
  // Worst case tolerates one band-edge miss on a short session.
  EXPECT_GE(run.length_attack.worst_accuracy, 0.7);
  EXPECT_GE(run.length_attack.pooled_accuracy, 0.85);
  EXPECT_NEAR(run.overhead_fraction, 0.0, 1e-9);
}

TEST_F(CountermeasureEndToEnd, PaddingCollapsesLengthAttack) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto run = evaluate_countermeasure(graph, "pad", pad_to_bucket(4096),
                                           small_config());
  EXPECT_TRUE(run.classifier_bands_overlap);
  // With all uploads identical, the decoder cannot find questions.
  EXPECT_LT(run.length_attack.pooled_accuracy, 0.5);
  EXPECT_GT(run.overhead_fraction, 0.0);
}

TEST_F(CountermeasureEndToEnd, SplitAloneStillLeaks) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto run = evaluate_countermeasure(graph, "split", split_records(1024),
                                           small_config());
  // The final-fragment length still separates the two JSON types, so
  // the attack retains signal (the paper's "easy fix" is not so easy).
  EXPECT_FALSE(run.classifier_bands_overlap);
  EXPECT_GE(run.length_attack.pooled_accuracy, 0.8);
}

TEST_F(CountermeasureEndToEnd, SplitAndPadDefeatsLengthAttack) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto run = evaluate_countermeasure(graph, "split+pad",
                                           split_and_pad(1024), small_config());
  EXPECT_TRUE(run.classifier_bands_overlap);
  EXPECT_LT(run.length_attack.pooled_accuracy, 0.5);
}

TEST_F(CountermeasureEndToEnd, TimingChannelSurvivesPadding) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto run = evaluate_countermeasure(graph, "pad", pad_to_bucket(4096),
                                           small_config());
  // The timing attack recovers a meaningful share of choices even when
  // lengths are uniform — the §VI caveat.
  EXPECT_GT(run.timing_attack.pooled_accuracy, 0.55);
}

TEST_F(CountermeasureEndToEnd, UniformUploadsKillTimingChannel) {
  const story::StoryGraph graph = story::make_bandersnatch();
  CountermeasureEvalConfig config = small_config();
  config.eval_sessions = 5;
  config.streaming.uniform_decision_uploads = true;
  const auto run = evaluate_countermeasure(graph, "split+pad+uniform",
                                           split_and_pad(1024), config);
  // Neither channel carries information beyond the blind majority guess.
  EXPECT_LE(run.length_attack.pooled_accuracy,
            run.blind_guess_accuracy + 0.05);
  EXPECT_LE(run.timing_attack.pooled_accuracy,
            run.blind_guess_accuracy + 0.05);
}

TEST(UniformUploads, EveryQuestionGetsExactlyOneWindowEndUpload) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const sim::TrafficProfile profile =
      sim::make_traffic_profile(sim::OperationalConditions{});
  sim::StreamingConfig config;
  config.uniform_decision_uploads = true;
  util::Rng rng(31);
  std::vector<Choice> choices;
  for (int i = 0; i < 13; ++i) {
    choices.push_back(i % 2 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }
  const sim::AppTrace trace =
      sim::simulate_app_trace(graph, choices, profile, config, rng);

  std::size_t type2 = 0;
  std::size_t decoys = 0;
  std::vector<util::SimTime> upload_times;
  for (const sim::AppEvent& event : trace.events) {
    if (!event.from_client) continue;
    if (event.client_kind == sim::ClientMessageKind::kType2Json) {
      ++type2;
      upload_times.push_back(event.time);
    } else if (event.client_kind == sim::ClientMessageKind::kDecoyUpload) {
      ++decoys;
      upload_times.push_back(event.time);
    }
  }
  // One upload per question: overrides + decoys == questions.
  EXPECT_EQ(type2 + decoys, trace.truth.questions.size());
  std::size_t non_defaults = 0;
  for (const auto& q : trace.truth.questions) {
    if (q.choice == Choice::kNonDefault) ++non_defaults;
  }
  EXPECT_EQ(type2, non_defaults);
  EXPECT_EQ(decoys, trace.truth.questions.size() - non_defaults);

  // Every upload sits exactly at its question's window end — the wire
  // timing is choice-independent.
  ASSERT_EQ(upload_times.size(), trace.truth.questions.size());
  std::sort(upload_times.begin(), upload_times.end());
  for (std::size_t i = 0; i < trace.truth.questions.size(); ++i) {
    const util::SimTime expected =
        trace.truth.questions[i].question_time +
        util::Duration::from_seconds(config.choice_window_seconds);
    EXPECT_EQ(upload_times[i], expected);
  }
}

TEST(UniformUploads, DecoysShapedLikeType2) {
  const sim::TrafficProfile profile =
      sim::make_traffic_profile(sim::OperationalConditions{});
  const auto real_band = profile.sealed_band(sim::ClientMessageKind::kType2Json);
  const auto decoy_band =
      profile.sealed_band(sim::ClientMessageKind::kDecoyUpload);
  EXPECT_EQ(real_band, decoy_band);
}

// --- timing attack unit behaviour ---------------------------------------

TEST(TimingAttack, DetectsWindowsOnPlainSessions) {
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::SessionConfig config;
  config.seed = 9001;
  const std::vector<Choice> choices(13, Choice::kNonDefault);
  const auto session = sim::simulate_session(graph, choices, config);

  TimingAttackConfig timing_config;
  const TimingInference result =
      timing_attack(session.capture.packets, timing_config);
  // Should detect roughly one window per question.
  EXPECT_GE(result.windows_detected, session.truth.questions.size() - 1);
  EXPECT_LE(result.windows_detected, session.truth.questions.size() + 2);
}

TEST(TimingAttack, EmptyCaptureHandled) {
  const TimingInference result = timing_attack(std::vector<net::Packet>{}, {});
  EXPECT_EQ(result.windows_detected, 0u);
  EXPECT_TRUE(result.session.questions.empty());
}

}  // namespace
}  // namespace wm::counter
