#include "wm/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wm::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, CategoricalRespectsZeros) {
  Rng rng(37);
  const std::vector<double> weights{0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 500; ++i) {
    const std::size_t idx = rng.categorical(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Rng, CategoricalProportions) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.categorical(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsDegenerate) {
  Rng rng(43);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zeros), std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
}

TEST(Rng, ClampedNormalIntStaysInBounds) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.clamped_normal_int(100.0, 50.0, 90, 110);
    EXPECT_GE(v, 90);
    EXPECT_LE(v, 110);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(Rng, ForkIndependence) {
  Rng parent(59);
  Rng child = parent.fork();
  // Child evolves independently of further parent draws.
  Rng parent2(59);
  Rng child2 = parent2.fork();
  (void)parent2.next_u64();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child.next_u64(), child2.next_u64());
  }
}

TEST(Rng, SplitMixKnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(first, splitmix64(state2));
  EXPECT_NE(splitmix64(state), first);
}

}  // namespace
}  // namespace wm::util
