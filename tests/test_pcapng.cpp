#include "wm/net/pcapng.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "wm/net/pcap.hpp"
#include "wm/util/bytes.hpp"

namespace wm::net {
namespace {

Packet make_packet(double seconds, std::size_t size, std::uint8_t fill) {
  return Packet(util::SimTime::from_seconds(seconds), util::Bytes(size, fill));
}

TEST(Pcapng, InMemoryRoundTrip) {
  std::stringstream stream;
  {
    PcapngWriter writer(stream);
    writer.write(make_packet(1.5, 60, 0xaa));
    writer.write(make_packet(2.000000123, 1501, 0xbb));  // odd size -> padding
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  PcapngReader reader(stream);
  const auto packets = reader.read_all();
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].timestamp.nanos(), 1'500'000'000);
  EXPECT_EQ(packets[1].timestamp.nanos(), 2'000'000'123);
  EXPECT_EQ(packets[0].data.size(), 60u);
  EXPECT_EQ(packets[1].data.size(), 1501u);
  EXPECT_EQ(packets[1].data[0], 0xbb);
}

TEST(Pcapng, FileRoundTripPreservesEverything) {
  const auto path = std::filesystem::temp_directory_path() / "wm_test.pcapng";
  std::vector<Packet> packets;
  for (int i = 0; i < 40; ++i) {
    packets.push_back(make_packet(0.001 * i + 1.0, 64 + static_cast<std::size_t>(i * 3),
                                  static_cast<std::uint8_t>(i)));
  }
  write_pcapng(path, packets);
  const auto loaded = read_pcapng(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].data, packets[i].data);
  }
  std::filesystem::remove(path);
}

TEST(Pcapng, EmptyFileYieldsNoPackets) {
  std::stringstream stream;
  { PcapngWriter writer(stream); }
  PcapngReader reader(stream);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Pcapng, UnknownBlocksSkipped) {
  std::stringstream stream;
  {
    PcapngWriter writer(stream);
    writer.write(make_packet(1.0, 100, 0x42));
  }
  // Append an unknown block type (e.g. Name Resolution Block, 0x4).
  std::string data = stream.str();
  util::ByteWriter extra;
  // little-endian framing
  const std::uint32_t kNrb = 0x00000004;
  const std::uint32_t total = 16;
  extra.write_u32_le(kNrb);
  extra.write_u32_le(total);
  extra.write_u32_le(0);  // body filler
  extra.write_u32_le(total);
  data.append(util::as_chars(extra.view()));
  // And another packet block after it.
  std::stringstream stream2(data);
  {
    // Re-open for append via string manipulation: write a second stream
    // containing one more EPB block and concatenate.
    std::stringstream tail;
    PcapngWriter writer(tail);
    writer.write(make_packet(2.0, 50, 0x43));
    std::string tail_str = tail.str();
    // Skip tail's SHB+IDB (they would start a new section, which is
    // legal pcapng; simpler here: keep them — reader handles sections).
    data += tail_str;
  }
  std::stringstream full(data);
  PcapngReader reader(full);
  const auto packets = reader.read_all();
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(reader.blocks_skipped(), 1u);
  EXPECT_EQ(packets[1].data.size(), 50u);
}

TEST(Pcapng, RejectsCorruptTrailer) {
  std::stringstream stream;
  {
    PcapngWriter writer(stream);
    writer.write(make_packet(1.0, 20, 0x11));
  }
  std::string data = stream.str();
  data[data.size() - 2] ^= 0x7f;  // corrupt final trailer length
  std::stringstream corrupt(data);
  PcapngReader reader(corrupt);
  EXPECT_THROW(reader.read_all(), std::runtime_error);
}

TEST(Pcapng, RejectsTruncatedBody) {
  std::stringstream stream;
  {
    PcapngWriter writer(stream);
    writer.write(make_packet(1.0, 400, 0x11));
  }
  std::string data = stream.str();
  data.resize(data.size() - 100);
  std::stringstream corrupt(data);
  PcapngReader reader(corrupt);
  EXPECT_THROW(reader.read_all(), std::runtime_error);
}

TEST(Pcapng, NegativeTimestampRejectedOnWrite) {
  std::stringstream stream;
  PcapngWriter writer(stream);
  Packet packet(util::SimTime::from_nanos(-1), util::Bytes(4, 0));
  EXPECT_THROW(writer.write(packet), std::invalid_argument);
}

TEST(ReadAnyCapture, DispatchesOnMagic) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto pcap_path = dir / "wm_any.pcap";
  const auto pcapng_path = dir / "wm_any.pcapng";
  const std::vector<Packet> packets{make_packet(1.0, 80, 0x77)};
  write_pcap(pcap_path, packets);
  write_pcapng(pcapng_path, packets);

  const auto from_pcap = read_any_capture(pcap_path);
  const auto from_pcapng = read_any_capture(pcapng_path);
  ASSERT_EQ(from_pcap.size(), 1u);
  ASSERT_EQ(from_pcapng.size(), 1u);
  EXPECT_EQ(from_pcap[0].data, from_pcapng[0].data);
  EXPECT_EQ(from_pcap[0].timestamp, from_pcapng[0].timestamp);

  std::filesystem::remove(pcap_path);
  std::filesystem::remove(pcapng_path);
  EXPECT_THROW(read_any_capture(dir / "wm_missing.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace wm::net
