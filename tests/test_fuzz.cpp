// Adversarial-input robustness: every parser that consumes untrusted
// bytes (an eavesdropper parses traffic it does not control) must
// reject garbage gracefully — error return or typed exception, never a
// crash, hang or over-read.
#include <gtest/gtest.h>

#include <sstream>

#include "wm/net/pcap.hpp"
#include "wm/net/reassembly.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/tls/handshake.hpp"
#include "wm/tls/record.hpp"
#include "wm/util/json.hpp"
#include "wm/util/rng.hpp"

namespace wm {
namespace {

util::Bytes random_bytes(util::Rng& rng, std::size_t max_size) {
  util::Bytes out(static_cast<std::size_t>(rng.next_below(max_size + 1)));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(Fuzz, TlsRecordParserNeverCrashes) {
  util::Rng rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    tls::TlsRecordParser parser;
    // Feed in several random chunks.
    const int chunks = 1 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < chunks; ++c) {
      const auto data = random_bytes(rng, 512);
      (void)parser.feed(util::SimTime::from_seconds(c), data);
    }
  }
}

TEST(Fuzz, TlsRecordParserSeededHeaders) {
  // Valid-looking headers with adversarial lengths.
  util::Rng rng(102);
  for (int trial = 0; trial < 2000; ++trial) {
    util::ByteWriter wire;
    wire.write_u8(static_cast<std::uint8_t>(20 + rng.next_below(5)));
    wire.write_u16_be(0x0303);
    wire.write_u16_be(static_cast<std::uint16_t>(rng.next_u64()));
    wire.write_bytes(random_bytes(rng, 64));
    tls::TlsRecordParser parser;
    (void)parser.feed(util::SimTime::from_seconds(0), wire.view());
  }
}

TEST(Fuzz, ClientHelloParseNeverCrashes) {
  util::Rng rng(103);
  for (int trial = 0; trial < 3000; ++trial) {
    auto data = random_bytes(rng, 256);
    // Half the time, make it start like a ClientHello.
    if (!data.empty() && rng.bernoulli(0.5)) data[0] = 1;
    (void)tls::ClientHello::parse(data);
    (void)tls::ServerHello::parse(data);
    (void)tls::extract_sni(data);
  }
}

TEST(Fuzz, ClientHelloMutatedRoundTrip) {
  // Mutate single bytes of a VALID hello; parse must never crash and
  // the unmutated form must keep round-tripping.
  tls::ClientHello hello;
  hello.cipher_suites = {0x1301, 0xc02f};
  hello.set_sni("fuzz.example.net");
  hello.set_alpn({"h2"});
  const util::Bytes wire = hello.serialize();

  util::Rng rng(104);
  for (int trial = 0; trial < 2000; ++trial) {
    util::Bytes mutated = wire;
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] = static_cast<std::uint8_t>(rng.next_u64());
    const auto parsed = tls::ClientHello::parse(mutated);
    if (parsed) {
      (void)parsed->sni();  // accessors on accepted input must be safe too
    }
  }
  ASSERT_TRUE(tls::ClientHello::parse(wire).has_value());
}

TEST(Fuzz, JsonParserNeverCrashes) {
  util::Rng rng(105);
  const std::string alphabet = "{}[]\",:0123456789.eE+-truefalsnl \t\n\\u";
  for (int trial = 0; trial < 5000; ++trial) {
    std::string text;
    const std::size_t size = static_cast<std::size_t>(rng.next_below(64));
    for (std::size_t i = 0; i < size; ++i) {
      text.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    try {
      const auto value = util::JsonValue::parse(text);
      // Anything accepted must re-serialize and re-parse to itself.
      EXPECT_EQ(util::JsonValue::parse(value.dump()), value);
    } catch (const std::runtime_error&) {
      // rejection is fine
    }
  }
}

TEST(Fuzz, PcapReaderRejectsGarbageGracefully) {
  util::Rng rng(106);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto data = random_bytes(rng, 256);
    std::string text(util::as_chars(data));
    std::stringstream stream(text);
    try {
      net::PcapReader reader(stream);
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Fuzz, PcapReaderMutatedValidFile) {
  std::stringstream base;
  {
    net::PcapWriter writer(base);
    for (int i = 0; i < 5; ++i) {
      writer.write(net::Packet(util::SimTime::from_seconds(i),
                               util::Bytes(60 + static_cast<std::size_t>(i), 0x5a)));
    }
  }
  const std::string valid = base.str();

  util::Rng rng(107);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = valid;
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] = static_cast<char>(rng.next_u64());
    std::stringstream stream(mutated);
    try {
      net::PcapReader reader(stream);
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Fuzz, PcapngReaderMutatedValidFile) {
  std::stringstream base;
  {
    net::PcapngWriter writer(base);
    for (int i = 0; i < 5; ++i) {
      writer.write(net::Packet(util::SimTime::from_seconds(i),
                               util::Bytes(80, static_cast<std::uint8_t>(i))));
    }
  }
  const std::string valid = base.str();

  util::Rng rng(108);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = valid;
    const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
    mutated[pos] = static_cast<char>(rng.next_u64());
    std::stringstream stream(mutated);
    try {
      net::PcapngReader reader(stream);
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Fuzz, ReassemblerRandomSegments) {
  // Random sequence numbers, flags and payloads: the reassembler must
  // stay consistent (delivered bytes monotonically increase, no crash).
  util::Rng rng(109);
  for (int trial = 0; trial < 200; ++trial) {
    net::TcpStreamReassembler::Config config;
    config.max_buffered_bytes = 4096;
    net::TcpStreamReassembler reassembler(config);
    std::uint64_t delivered = 0;
    for (int seg = 0; seg < 50; ++seg) {
      const auto payload = random_bytes(rng, 128);
      (void)reassembler.on_segment(
          util::SimTime::from_seconds(seg),
          static_cast<std::uint32_t>(rng.next_u64()), rng.bernoulli(0.05),
          rng.bernoulli(0.05), payload);
      EXPECT_GE(reassembler.delivered_bytes(), delivered);
      delivered = reassembler.delivered_bytes();
    }
  }
}

}  // namespace
}  // namespace wm
