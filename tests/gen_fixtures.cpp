// Golden-corpus generator. Writes the tiny deterministic capture
// fixtures plus their .expected.json companions (expected choice
// sequence, record tallies, and the stable wm::obs counter snapshot)
// into tests/golden/. Committed alongside the corpus so the fixtures
// are reproducible from source:
//
//     ./gen_fixtures [output_dir]     (default: the committed corpus)
//
// Regenerate only when the traffic model or the instrumentation
// deliberately changes; test_golden.cpp fails loudly on any drift.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "golden_common.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/obs/registry.hpp"
#include "wm/util/json.hpp"

#ifndef WM_GOLDEN_DIR
#define WM_GOLDEN_DIR "."
#endif

namespace {

wm::util::JsonValue expected_document(const wm::core::InferReport& report,
                                      const wm::obs::Snapshot& snapshot) {
  using wm::util::JsonArray;
  using wm::util::JsonObject;
  using wm::util::JsonValue;

  JsonArray choices;
  for (const wm::story::Choice choice : report.combined.choices()) {
    choices.emplace_back(choice == wm::story::Choice::kNonDefault
                             ? "non_default"
                             : "default");
  }
  JsonObject stable;
  for (const auto& [name, value] : snapshot.stable) {
    stable.emplace(name, JsonValue(value));
  }
  JsonArray viewers;
  for (const auto& [client, session] : report.per_client) {
    viewers.emplace_back(JsonObject{
        {"client", JsonValue(client)},
        {"questions", JsonValue(static_cast<std::uint64_t>(session.questions.size()))},
    });
  }
  return JsonValue(JsonObject{
      {"choices", JsonValue(std::move(choices))},
      {"other_records", JsonValue(static_cast<std::uint64_t>(report.combined.other_records))},
      {"stable", JsonValue(std::move(stable))},
      {"type1_records", JsonValue(static_cast<std::uint64_t>(report.combined.type1_records))},
      {"type2_records", JsonValue(static_cast<std::uint64_t>(report.combined.type2_records))},
      {"viewers", JsonValue(std::move(viewers))},
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : WM_GOLDEN_DIR;
  std::filesystem::create_directories(out_dir);

  const wm::core::AttackPipeline pipeline = wm::golden::calibrated_pipeline();

  for (const wm::golden::FixtureSpec& spec : wm::golden::fixture_specs()) {
    const auto packets = wm::golden::fixture_packets(spec.name);
    if (packets.empty()) {
      std::cerr << "unknown fixture " << spec.name << "\n";
      return 1;
    }
    const auto capture_path =
        out_dir / (spec.name + (spec.pcapng ? ".pcapng" : ".pcap"));
    if (spec.pcapng) {
      wm::net::write_pcapng(capture_path, packets);
    } else {
      wm::net::write_pcap(capture_path, packets);
    }

    // Decode exactly as the replay test will: from the file, inline
    // engine, instrumented. The stable section is shard-invariant, so
    // the inline run's snapshot is the expectation for every shard
    // count.
    wm::obs::Registry registry;
    wm::core::InferOptions options;
    options.per_client = true;
    options.metrics = &registry;
    auto report = pipeline.infer_capture(capture_path, options);
    if (!report.ok()) {
      std::cerr << spec.name << ": " << report.error().to_string() << "\n";
      return 1;
    }

    const auto expected_path = out_dir / (spec.name + ".expected.json");
    std::ofstream out(expected_path);
    out << expected_document(*report, registry.snapshot()).dump(2) << "\n";
    std::cout << spec.name << ": " << packets.size() << " packets, "
              << std::filesystem::file_size(capture_path) << " bytes, "
              << report->combined.questions.size() << " questions\n";
  }
  return 0;
}
