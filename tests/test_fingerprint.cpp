// Condition fingerprinting: identify the victim's platform from the
// capture, then attack with the matched per-condition classifier.
#include <gtest/gtest.h>

#include "wm/core/fingerprint.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::core {
namespace {

using story::Choice;

std::vector<sim::OperationalConditions> library_conditions() {
  sim::OperationalConditions linux_ff;
  sim::OperationalConditions windows_ff = linux_ff;
  windows_ff.os = sim::OperatingSystem::kWindows;
  sim::OperationalConditions mac_ff = linux_ff;
  mac_ff.os = sim::OperatingSystem::kMac;
  sim::OperationalConditions linux_chrome = linux_ff;
  linux_chrome.browser = sim::Browser::kChrome;
  sim::OperationalConditions windows_chrome = windows_ff;
  windows_chrome.browser = sim::Browser::kChrome;
  sim::OperationalConditions mac_chrome = mac_ff;
  mac_chrome.browser = sim::Browser::kChrome;
  return {linux_ff, windows_ff, mac_ff, linux_chrome, windows_chrome, mac_chrome};
}

const story::StoryGraph& graph() {
  static const story::StoryGraph g = story::make_bandersnatch();
  return g;
}

const ConditionFingerprinter& library() {
  static const ConditionFingerprinter lib = ConditionFingerprinter::build_library(
      graph(), library_conditions(), /*sessions_per_condition=*/3, /*seed=*/6100);
  return lib;
}

sim::SessionResult victim_session(const sim::OperationalConditions& conditions,
                                  std::uint64_t seed) {
  std::vector<Choice> choices;
  for (int i = 0; i < 13; ++i) {
    choices.push_back(i % 3 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }
  sim::SessionConfig config;
  config.conditions = conditions;
  config.seed = seed;
  return sim::simulate_session(graph(), choices, config);
}

TEST(Fingerprint, LibraryBuilds) {
  EXPECT_EQ(library().size(), 6u);
}

class FingerprintPerCondition
    : public ::testing::TestWithParam<sim::OperationalConditions> {};

TEST_P(FingerprintPerCondition, IdentifiesVictimPlatform) {
  const auto victim = victim_session(GetParam(), 6200);
  const auto observations = extract_client_records(victim.capture.packets);
  const auto identified = library().identify(observations);
  ASSERT_TRUE(identified.has_value());
  EXPECT_EQ(identified->os, GetParam().os) << GetParam().to_string();
  EXPECT_EQ(identified->browser, GetParam().browser) << GetParam().to_string();
}

TEST_P(FingerprintPerCondition, AttacksWithoutPriorKnowledge) {
  const auto victim = victim_session(GetParam(), 6300);
  const auto result = library().infer(victim.capture.packets);
  ASSERT_TRUE(result.conditions.has_value());
  const SessionScore score = score_session(victim.truth, result.session);
  EXPECT_GE(score.choice_accuracy, 0.75) << GetParam().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    SixConditions, FingerprintPerCondition,
    ::testing::ValuesIn(library_conditions()),
    [](const ::testing::TestParamInfo<sim::OperationalConditions>& info) {
      std::string name =
          sim::to_string(info.param.os) + sim::to_string(info.param.browser);
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name;
    });

TEST(Fingerprint, ScoresExposeStructure) {
  const auto victim = victim_session(sim::OperationalConditions{}, 6400);
  const auto observations = extract_client_records(victim.capture.packets);
  const auto scores = library().score(observations);
  ASSERT_EQ(scores.size(), 6u);
  // Best hypothesis is plausible and matches the victim.
  EXPECT_TRUE(scores.front().plausible);
  EXPECT_EQ(scores.front().conditions.os, sim::OperatingSystem::kLinux);
  EXPECT_GE(scores.front().type1_hits, 1u);
  EXPECT_LE(scores.front().type2_hits, scores.front().type1_hits);
}

TEST(Fingerprint, PaddedTrafficYieldsNoPlausibleHypothesis) {
  // Under a padding countermeasure the bands catch nothing (or absurd
  // amounts); the fingerprinter must abstain rather than guess.
  std::vector<Choice> choices(13, Choice::kNonDefault);
  sim::SessionConfig config;
  config.seed = 6500;
  config.packetize.client_transform = [](sim::ClientMessageKind, std::size_t) {
    return std::vector<std::size_t>{4096};
  };
  const auto victim = sim::simulate_session(graph(), choices, config);
  const auto observations = extract_client_records(victim.capture.packets);
  const auto identified = library().identify(observations);
  EXPECT_FALSE(identified.has_value());
}

TEST(Fingerprint, EmptyCaptureAbstains) {
  EXPECT_FALSE(library().identify({}).has_value());
  const auto result = library().infer({});
  EXPECT_FALSE(result.conditions.has_value());
  EXPECT_TRUE(result.session.questions.empty());
}

}  // namespace
}  // namespace wm::core
