// Broad integration sweeps: the full pipeline across generated story
// graphs, TLS 1.3 record padding end to end, and the log utility.
#include <gtest/gtest.h>

#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/story/generator.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/util/log.hpp"

namespace wm::core {
namespace {

using story::Choice;

struct SweepCase {
  std::uint64_t story_seed;
  std::size_t questions;
};

class PipelineStorySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineStorySweep, AttackGeneralizesAcrossScripts) {
  util::Rng story_rng(GetParam().story_seed);
  story::GeneratorConfig gen;
  gen.questions = GetParam().questions;
  // No early endings: a story that ends at Q1' gives the calibration
  // sessions a single type-2 example, too few to cover the band (the
  // small-calibration regime is studied separately in result_accuracy).
  gen.early_ending_probability = 0.0;
  const story::StoryGraph graph = story::generate_story(gen, story_rng);

  std::vector<Choice> alternating;
  for (std::size_t i = 0; i < gen.questions + 4; ++i) {
    alternating.push_back(i % 2 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }

  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = GetParam().story_seed * 1000 + s;
    auto session = sim::simulate_session(graph, alternating, config);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline attack("interval");
  attack.calibrate(calibration);

  util::Rng victim_rng(GetParam().story_seed + 5);
  std::vector<Choice> victim_choices;
  for (std::size_t i = 0; i < gen.questions + 4; ++i) {
    victim_choices.push_back(victim_rng.bernoulli(0.5) ? Choice::kDefault
                                                       : Choice::kNonDefault);
  }
  sim::SessionConfig config;
  config.seed = GetParam().story_seed * 7 + 99;
  const auto victim = sim::simulate_session(graph, victim_choices, config);
  engine::VectorSource source(&victim.capture.packets);
  const auto score = score_session(victim.truth, attack.infer(source).combined);
  // Allow at most one band-edge miss (the statistical tail studied in
  // result_accuracy); everything else must decode.
  EXPECT_GE(score.choices_correct + 1, score.questions_truth)
      << "story seed " << GetParam().story_seed;
  EXPECT_TRUE(score.question_count_match);
}

INSTANTIATE_TEST_SUITE_P(
    Stories, PipelineStorySweep,
    ::testing::Values(SweepCase{11, 4}, SweepCase{23, 6}, SweepCase{37, 8},
                      SweepCase{53, 10}, SweepCase{71, 5}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.story_seed) + "q" +
             std::to_string(info.param.questions);
    });

TEST(Tls13Padding, QuantizesApiRecordLengthsEndToEnd) {
  // A Chrome (TLS 1.3) victim with RFC 8446 record padding on the API
  // connection: every API client record length becomes a multiple of
  // the quantum (+16 tag), so the JSON bands collapse.
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::OperationalConditions chrome;
  chrome.browser = sim::Browser::kChrome;

  sim::SessionConfig config;
  config.conditions = chrome;
  config.seed = 1212;
  config.packetize.api_tls13_pad_to = 1024;
  const auto session = sim::simulate_session(
      graph, std::vector<Choice>(13, Choice::kNonDefault), config);

  const auto streams = tls::extract_record_streams(session.capture.packets);
  bool saw_api_records = false;
  for (const auto& stream : streams) {
    if (!stream.sni || *stream.sni != session.capture.api_sni) continue;
    for (const auto& event : stream.events) {
      if (!event.is_client_application_data()) continue;
      saw_api_records = true;
      // ciphertext = padded inner (multiple of 1024) + 16 tag.
      EXPECT_EQ((event.record_length - 16u) % 1024u, 0u)
          << "record length " << event.record_length;
    }
  }
  EXPECT_TRUE(saw_api_records);

  // The CDN connection is untouched (chunk requests stay small).
  for (const auto& stream : streams) {
    if (!stream.sni || *stream.sni != session.capture.cdn_sni) continue;
    std::size_t small_records = 0;
    for (const auto& event : stream.events) {
      if (event.is_client_application_data() && event.record_length < 800) {
        ++small_records;
      }
    }
    EXPECT_GT(small_records, 0u);
  }
}

TEST(Tls13Padding, NoEffectOnTls12Profiles) {
  // Firefox negotiates TLS 1.2; the padding knob must be inert there.
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::SessionConfig padded;
  padded.seed = 1313;
  padded.packetize.api_tls13_pad_to = 1024;
  sim::SessionConfig plain;
  plain.seed = 1313;
  const std::vector<Choice> choices(13, Choice::kDefault);
  const auto a = sim::simulate_session(graph, choices, padded);
  const auto b = sim::simulate_session(graph, choices, plain);
  EXPECT_EQ(a.capture.packets.size(), b.capture.packets.size());
}

}  // namespace
}  // namespace wm::core

namespace wm::util {
namespace {

TEST(Log, LevelGateAndNames) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Statements below the threshold are cheap no-ops (this mostly
  // exercises the macro's guard path).
  WM_LOG(Debug) << "should not be emitted";
  WM_LOG(Info) << "should not be emitted";
  set_log_level(LogLevel::kOff);
  WM_LOG(Error) << "suppressed too";
  set_log_level(original);

  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace wm::util
