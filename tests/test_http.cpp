// HTTP message modeling: serialization, exact sizing, parsing.
#include <gtest/gtest.h>

#include "wm/sim/http.hpp"
#include "wm/sim/state_json.hpp"

namespace wm::sim {
namespace {

TEST(Http, SerializeShape) {
  HttpRequest request;
  request.method = "GET";
  request.target = "/path?q=1";
  request.headers["Host"] = "example.com";
  request.body = "xyz";
  const std::string wire = request.serialize();
  EXPECT_EQ(wire, "GET /path?q=1 HTTP/1.1\r\nHost: example.com\r\n\r\nxyz");
  EXPECT_EQ(request.serialized_size(), wire.size());
}

TEST(Http, ChunkRequestSizedExactly) {
  util::Rng rng(5);
  for (std::size_t target : {450u, 500u, 620u, 700u}) {
    const HttpRequest request = make_chunk_request(
        "occ-0-2433-2430.1.nflxvideo.net", "BREAKFAST", 3, 600000, 200000,
        target, rng);
    EXPECT_EQ(request.serialized_size(), target);
    EXPECT_EQ(request.method, "GET");
    EXPECT_NE(request.target.find("/range/600000-799999"), std::string::npos);
    EXPECT_EQ(request.headers.at("Host"), "occ-0-2433-2430.1.nflxvideo.net");
  }
}

TEST(Http, ChunkRequestUnattainableTargetStaysValid) {
  util::Rng rng(6);
  const HttpRequest request = make_chunk_request("h", "S", 0, 0, 100, 10, rng);
  EXPECT_GT(request.serialized_size(), 10u);
  EXPECT_TRUE(parse_http_request(request.serialize()).has_value());
}

TEST(Http, StatePostWrapsJsonExactly) {
  util::Rng rng(7);
  const auto identity = PlaybackIdentity::sample(rng);
  const auto doc = make_type1_state(identity, 2, "BUS_RIDE",
                                    util::SimTime::from_seconds(60.0), 0);
  const std::string body = serialize_state(doc);
  const HttpRequest post = make_state_post("www.netflix.com", body, 2188);
  EXPECT_EQ(post.serialized_size(), 2188u);
  EXPECT_EQ(post.method, "POST");
  EXPECT_EQ(post.target, "/ichnaea/log");
  EXPECT_EQ(post.body, body);
  EXPECT_EQ(post.headers.at("Content-Length"), std::to_string(body.size()));
}

TEST(Http, ParseRoundTrip) {
  util::Rng rng(8);
  const HttpRequest original = make_chunk_request("host.example", "SEG", 1, 100,
                                                  200, 512, rng);
  const auto parsed = parse_http_request(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, original.method);
  EXPECT_EQ(parsed->target, original.target);
  EXPECT_EQ(parsed->headers.at("Host"), "host.example");
  EXPECT_EQ(parsed->headers.size(), original.headers.size());
}

TEST(Http, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_http_request("").has_value());
  EXPECT_FALSE(parse_http_request("GET /\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(parse_http_request("GET / HTTP/1.1\r\nbadheader\r\n\r\n")
                   .has_value());
  EXPECT_FALSE(
      parse_http_request("GET / HTTP/1.1\r\nHost: x\r\n").has_value());  // no end
}

TEST(Http, ParseTolerantOfBinaryBody) {
  std::string wire = "POST /x HTTP/1.1\r\nHost: a\r\n\r\n";
  wire.push_back('\0');
  wire.push_back('\xff');
  const auto parsed = parse_http_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body.size(), 2u);
}

}  // namespace
}  // namespace wm::sim
