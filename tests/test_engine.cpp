// The streaming engine against the batch pipeline: sharded incremental
// analysis must reproduce the whole-capture batch result exactly, for
// any shard count, and must separate interleaved viewers, bound its
// flow state under long replays, and report capture failures as typed
// Results instead of exceptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "wm/core/engine/engine.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/net/pcap.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::core {
namespace {

using story::Choice;

std::vector<Choice> alternating(std::size_t n, bool start_non_default) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    const bool non_default = (i % 2 == 0) == start_non_default;
    out.push_back(non_default ? Choice::kNonDefault : Choice::kDefault);
  }
  return out;
}

AttackPipeline calibrated_pipeline(const story::StoryGraph& graph) {
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 9600 + s;
    auto session = sim::simulate_session(graph, alternating(13, true), config);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

/// Interleaved multi-viewer capture: `viewers` sessions behind one tap,
/// distinct client addresses/ports, staggered starts, merged by time.
struct MergedCapture {
  std::vector<net::Packet> packets;
  std::vector<sim::SessionGroundTruth> truths;
  std::vector<std::string> clients;
};

MergedCapture make_merged_capture(const story::StoryGraph& graph,
                                  std::size_t viewers) {
  MergedCapture merged;
  for (std::size_t v = 0; v < viewers; ++v) {
    sim::SessionConfig config;
    config.seed = 9700 + v;
    config.packetize.client_ip =
        net::Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(10 + v));
    config.packetize.cdn_client_port = static_cast<std::uint16_t>(52000 + 2 * v);
    config.packetize.api_client_port = static_cast<std::uint16_t>(52001 + 2 * v);
    auto session = sim::simulate_session(graph, alternating(13, v % 2 == 0), config);
    merged.truths.push_back(session.truth);
    merged.clients.push_back(session.capture.client_ip.to_string());
    const util::Duration stagger = util::Duration::millis(1700) * static_cast<int>(v);
    for (net::Packet& packet : session.capture.packets) {
      packet.timestamp += stagger;
      merged.packets.push_back(std::move(packet));
    }
  }
  std::stable_sort(merged.packets.begin(), merged.packets.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

void expect_sessions_identical(const InferredSession& a, const InferredSession& b,
                               const std::string& context) {
  ASSERT_EQ(a.questions.size(), b.questions.size()) << context;
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].index, b.questions[i].index) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].question_time, b.questions[i].question_time)
        << context << " Q" << i;
    EXPECT_EQ(a.questions[i].choice, b.questions[i].choice) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].override_time, b.questions[i].override_time)
        << context << " Q" << i;
  }
  EXPECT_EQ(a.type1_records, b.type1_records) << context;
  EXPECT_EQ(a.type2_records, b.type2_records) << context;
  EXPECT_EQ(a.other_records, b.other_records) << context;
}

TEST(Engine, ShardedOutputIdenticalToBatchForEveryShardCount) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const MergedCapture merged = make_merged_capture(graph, 3);

  // Golden reference: the primitive batch path (extract everything,
  // decode once), exactly what AttackPipeline::infer() historically did.
  const InferredSession golden_combined = decode_choices(
      pipeline.classifier(), extract_client_records(merged.packets));

  // Per-viewer golden reference: the inline (shards=0) run; every other
  // shard count must reproduce it exactly.
  std::map<std::string, InferredSession> golden_per_client;
  {
    engine::VectorSource source(&merged.packets);
    InferOptions options;
    options.shards = 0;
    options.per_client = true;
    for (auto& [client, session] : pipeline.infer(source, options).per_client) {
      golden_per_client.emplace(client, std::move(session));
    }
  }

  for (const std::size_t shards : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{4}, std::size_t{8}}) {
    engine::VectorSource source(&merged.packets);
    InferOptions options;
    options.shards = shards;
    options.per_client = true;
    const InferReport report = pipeline.infer(source, options);

    const std::string context = "shards=" + std::to_string(shards);
    expect_sessions_identical(report.combined, golden_combined, context);
    EXPECT_EQ(report.stats.packets_in, merged.packets.size()) << context;
    EXPECT_EQ(report.per_client.size(), merged.clients.size()) << context;

    // Per-viewer output must be identical to the inline per-client path.
    ASSERT_EQ(report.per_client.size(), golden_per_client.size()) << context;
    for (const auto& [client, session] : golden_per_client) {
      ASSERT_TRUE(report.per_client.count(client)) << context << " " << client;
      expect_sessions_identical(report.per_client.at(client), session,
                                context + " client " + client);
    }
  }
}

TEST(Engine, InterleavedViewersSeparateCorrectly) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const MergedCapture merged = make_merged_capture(graph, 2);

  engine::VectorSource source(&merged.packets);
  InferOptions options;
  options.shards = 4;
  options.per_client = true;
  const InferReport report = pipeline.infer(source, options);

  ASSERT_EQ(report.per_client.size(), 2u);
  for (std::size_t v = 0; v < merged.clients.size(); ++v) {
    ASSERT_TRUE(report.per_client.count(merged.clients[v])) << merged.clients[v];
    const SessionScore score = score_session(
        merged.truths[v], report.per_client.at(merged.clients[v]));
    EXPECT_GE(score.choice_accuracy, 0.75) << "viewer " << v;
    EXPECT_TRUE(score.question_count_match) << "viewer " << v;
  }
  EXPECT_EQ(report.stats.viewers_seen, 2u);
  EXPECT_GT(report.stats.type1_records, 0u);
}

TEST(Engine, SinkStreamsPerViewerUpdates) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const MergedCapture merged = make_merged_capture(graph, 2);

  std::mutex mutex;
  std::map<std::string, std::vector<engine::ViewerUpdate>> updates;
  InferOptions options;
  options.shards = 2;
  options.per_client = true;
  engine::CallbackSink sink([&](const engine::ViewerUpdate& update) {
    const std::lock_guard<std::mutex> lock(mutex);
    updates[update.client].push_back(update);
  });
  options.sink = &sink;

  engine::VectorSource source(&merged.packets);
  const InferReport report = pipeline.infer(source, options);

  ASSERT_EQ(updates.size(), 2u);
  for (const auto& [client, client_updates] : updates) {
    ASSERT_FALSE(client_updates.empty());
    // Updates accumulate monotonically toward the final session.
    ASSERT_TRUE(report.per_client.count(client));
    const auto& final_session = report.per_client.at(client);
    const auto& last = client_updates.back().session;
    EXPECT_EQ(last.questions.size(), final_session.questions.size()) << client;
    EXPECT_EQ(last.type1_records, final_session.type1_records) << client;
    EXPECT_EQ(last.type2_records, final_session.type2_records) << client;
    for (const auto& update : client_updates) {
      EXPECT_EQ(update.client, client);
      EXPECT_NE(update.record_class, RecordClass::kOther);
    }
  }
}

TEST(Engine, SlowConsumerBackpressureLosesNothing) {
  // A deliberately starved configuration: tiny rings, tiny batches, and
  // a sink that naps on every record so the workers fall far behind the
  // dispatcher. The dispatcher must park at queue_capacity (counted as
  // backpressure), and despite all that blocking the result must be
  // byte-identical to the batch decode — no batch lost or reordered.
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const MergedCapture merged = make_merged_capture(graph, 2);

  const InferredSession golden_combined = decode_choices(
      pipeline.classifier(), extract_client_records(merged.packets));

  engine::EngineConfig config;
  config.shards = 2;
  config.dispatch_batch = 8;
  config.queue_capacity = 1;  // rounds up to the 2-slot ring minimum
  engine::CallbackSink sink([](const engine::ViewerUpdate&) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  });
  engine::ShardedFlowEngine engine(pipeline.classifier(), config, &sink);
  engine::VectorSource source(&merged.packets);
  EXPECT_EQ(engine.consume(source), merged.packets.size());
  const engine::EngineResult result = engine.finish();

  expect_sessions_identical(result.combined, golden_combined, "slow consumer");
  EXPECT_EQ(result.stats.packets_in, merged.packets.size());
  EXPECT_GT(result.stats.backpressure_waits, 0u);
  EXPECT_GE(result.stats.batches_dispatched,
            merged.packets.size() / (config.dispatch_batch * 2));
}

TEST(Engine, LongReplayEvictsIdleFlowsAndStaysBounded) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);

  sim::SessionConfig config;
  config.seed = 9900;
  auto base = sim::simulate_session(graph, alternating(13, true), config);
  const util::Duration session_length = base.session_length;

  // First, the single-lap reference decode.
  engine::VectorSource one_lap(&base.capture.packets);
  InferOptions reference_options;
  reference_options.per_client = true;
  const InferReport reference = pipeline.infer(one_lap, reference_options);
  ASSERT_EQ(reference.per_client.size(), 1u);
  const InferredSession& reference_session = reference.per_client.begin()->second;
  ASSERT_FALSE(reference_session.questions.empty());

  // Then a 10-lap replay (each lap a fresh viewer) with eviction set to
  // one session length: within-session idle gaps survive, finished
  // sessions do not.
  constexpr std::size_t kLaps = 10;
  engine::ChunkedReplaySource::Config replay_config;
  replay_config.laps = kLaps;
  engine::ChunkedReplaySource replay(base.capture.packets, replay_config);

  InferOptions options;
  options.shards = 2;
  options.per_client = true;
  options.flow_idle_timeout = session_length;
  const InferReport report = pipeline.infer(replay, options);

  // Every lap decodes as its own viewer, identically to the reference
  // up to that lap's constant replay time shift.
  ASSERT_EQ(report.per_client.size(), kLaps);
  for (const auto& [client, session] : report.per_client) {
    const std::string context = "viewer " + client;
    ASSERT_EQ(session.questions.size(), reference_session.questions.size())
        << context;
    ASSERT_FALSE(session.questions.empty()) << context;
    const util::Duration shift = session.questions[0].question_time -
                                 reference_session.questions[0].question_time;
    for (std::size_t i = 0; i < session.questions.size(); ++i) {
      const auto& got = session.questions[i];
      const auto& want = reference_session.questions[i];
      EXPECT_EQ(got.index, want.index) << context << " Q" << i;
      EXPECT_EQ(got.question_time, want.question_time + shift)
          << context << " Q" << i;
      EXPECT_EQ(got.choice, want.choice) << context << " Q" << i;
      ASSERT_EQ(got.override_time.has_value(), want.override_time.has_value())
          << context << " Q" << i;
      if (want.override_time) {
        EXPECT_EQ(*got.override_time, *want.override_time + shift)
            << context << " Q" << i;
      }
    }
    EXPECT_EQ(session.type1_records, reference_session.type1_records) << context;
    EXPECT_EQ(session.type2_records, reference_session.type2_records) << context;
    EXPECT_EQ(session.other_records, reference_session.other_records) << context;
  }

  // Memory boundedness: most laps' flow state was evicted, and the peak
  // concurrently-tracked state held a small number of laps, not all of
  // them. (Sweep cadence + the one-timeout idle allowance bound the
  // overlap at ~2-3 live laps.)
  const std::uint64_t flows_per_lap = report.stats.flows_opened / kLaps;
  ASSERT_GT(flows_per_lap, 0u);
  EXPECT_GE(report.stats.flows_evicted, flows_per_lap * (kLaps - 4));
  EXPECT_LE(report.stats.peak_active_flows, flows_per_lap * 4);
  EXPECT_EQ(report.stats.packets_in, base.capture.packets.size() * kLaps);
}

TEST(Engine, ReplayWithoutRewriteKeepsOneViewer) {
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::SessionConfig config;
  config.seed = 9901;
  auto base = sim::simulate_session(graph, alternating(13, true), config);

  engine::ChunkedReplaySource::Config replay_config;
  replay_config.laps = 3;
  replay_config.rewrite_addresses = false;
  engine::ChunkedReplaySource replay(base.capture.packets, replay_config);

  std::size_t packets = 0;
  std::string client;
  while (auto packet = replay.next()) {
    ++packets;
    if (const auto decoded = net::decode_packet(*packet);
        decoded && decoded->has_ipv4() && client.empty()) {
      client = decoded->ipv4().source.to_string();
    }
  }
  EXPECT_EQ(packets, base.capture.packets.size() * 3);
}

TEST(EngineResultApi, MissingFileIsTypedNotFound) {
  const AttackPipeline pipeline("interval");
  const auto result = pipeline.infer_capture("/nonexistent/nowhere.pcap");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kNotFound);
  EXPECT_FALSE(result.error().message.empty());
}

TEST(EngineResultApi, GarbageFileIsUnsupportedFormat) {
  const auto path = std::filesystem::temp_directory_path() / "wm_engine_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a capture file, not even close";
  }
  const auto source = engine::open_capture(path);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.error().code, ErrorCode::kUnsupportedFormat);
  std::filesystem::remove(path);
}

TEST(EngineResultApi, TruncatedCaptureReportsMalformedTail) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  sim::SessionConfig config;
  config.seed = 9902;
  const auto session = sim::simulate_session(graph, alternating(13, true), config);

  const auto dir = std::filesystem::temp_directory_path();
  const auto whole = dir / "wm_engine_whole.pcap";
  net::write_pcap(whole, session.capture.packets);

  // Chop the file mid-record: reading must deliver the intact prefix,
  // then surface a typed error instead of throwing.
  const auto truncated = dir / "wm_engine_truncated.pcap";
  {
    std::ifstream in(whole, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 7);
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  const auto result = pipeline.infer_capture(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kMalformedCapture);

  std::filesystem::remove(whole);
  std::filesystem::remove(truncated);
}

TEST(EngineResultApi, ValidCaptureRoundTripsThroughFileSource) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  sim::SessionConfig config;
  config.seed = 9903;
  const auto session = sim::simulate_session(graph, alternating(13, false), config);

  const auto path = std::filesystem::temp_directory_path() / "wm_engine_valid.pcap";
  net::write_pcap(path, session.capture.packets);

  const auto from_file = pipeline.infer_capture(path);
  ASSERT_TRUE(from_file.ok()) << from_file.error().to_string();
  engine::VectorSource memory_source(&session.capture.packets);
  const InferredSession from_memory = pipeline.infer(memory_source).combined;
  expect_sessions_identical(from_file->combined, from_memory, "file vs memory");

  std::filesystem::remove(path);
}

}  // namespace
}  // namespace wm::core
