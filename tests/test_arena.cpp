#include "wm/util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <vector>

namespace wm::util {
namespace {

TEST(Arena, BumpAllocationsAreDisjointAndAligned) {
  Arena arena;
  std::vector<void*> pointers;
  for (int i = 0; i < 64; ++i) pointers.push_back(arena.allocate(48));
  std::set<void*> unique(pointers.begin(), pointers.end());
  EXPECT_EQ(unique.size(), pointers.size());
  for (void* ptr : pointers) {
    // wm-lint: allow(cast): address-alignment assertion on arena
    // pointers — no byte reinterpretation happens.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % Arena::kGranularity, 0u);
    std::memset(ptr, 0xab, 48);  // must be writable, ASan-clean
  }
  EXPECT_EQ(arena.stats().allocations, 64u);
  EXPECT_EQ(arena.stats().blocks, 1u);
}

TEST(Arena, FreelistRecyclesSameSizeClass) {
  Arena arena;
  void* first = arena.allocate(100);
  arena.deallocate(first, 100);
  // 100 and 120 round to the same multiple-of-granularity class only if
  // granularity >= 24; use the exact same size to stay portable.
  void* second = arena.allocate(100);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.stats().freelist_hits, 1u);

  // A different size class does not steal the freelist node.
  arena.deallocate(second, 100);
  void* other = arena.allocate(1000);
  EXPECT_NE(other, second);
  EXPECT_EQ(arena.stats().freelist_hits, 1u);
}

TEST(Arena, LargeAllocationsBypassFreelists) {
  Arena arena;
  const std::size_t big = Arena::kMaxRecycledBytes + 64;
  void* first = arena.allocate(big);
  arena.deallocate(first, big);
  void* second = arena.allocate(big);
  // Large blocks are only reclaimed by reset(), never recycled.
  EXPECT_NE(first, second);
  EXPECT_EQ(arena.stats().freelist_hits, 0u);
}

TEST(Arena, LiveAndHighWaterAccounting) {
  Arena arena;
  void* a = arena.allocate(64);
  void* b = arena.allocate(64);
  const std::size_t peak = arena.stats().live_bytes;
  EXPECT_EQ(peak, arena.stats().high_water_bytes);
  arena.deallocate(a, 64);
  EXPECT_LT(arena.stats().live_bytes, peak);
  EXPECT_EQ(arena.stats().high_water_bytes, peak);
  arena.deallocate(b, 64);
  EXPECT_EQ(arena.stats().live_bytes, 0u);
}

TEST(Arena, ResetRewindsWithoutReleasingBlocks) {
  Arena arena(/*block_bytes=*/8192);
  for (int i = 0; i < 1000; ++i) (void)arena.allocate(512);
  const std::size_t blocks = arena.stats().blocks;
  const std::size_t reserved = arena.stats().reserved_bytes;
  EXPECT_GT(blocks, 1u);
  arena.reset();
  EXPECT_EQ(arena.stats().live_bytes, 0u);
  EXPECT_EQ(arena.stats().blocks, blocks);
  EXPECT_EQ(arena.stats().reserved_bytes, reserved);
  // Rewound blocks satisfy fresh allocations without reserving more.
  for (int i = 0; i < 1000; ++i) (void)arena.allocate(512);
  EXPECT_EQ(arena.stats().reserved_bytes, reserved);
}

TEST(Arena, ZeroSizeAllocationIsValid) {
  Arena arena;
  void* ptr = arena.allocate(0);
  ASSERT_NE(ptr, nullptr);
  arena.deallocate(ptr, 0);
  EXPECT_EQ(arena.stats().live_bytes, 0u);
}

TEST(ArenaAllocator, BacksAStdMapThroughChurn) {
  Arena arena;
  {
    using Alloc = ArenaAllocator<std::pair<const int, std::uint64_t>>;
    std::map<int, std::uint64_t, std::less<int>, Alloc> map{std::less<int>(),
                                                            Alloc(&arena)};
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 500; ++i) map[i] = static_cast<std::uint64_t>(i) * 3;
      for (int i = 0; i < 500; i += 2) map.erase(i);
    }
    for (const auto& [key, value] : map) {
      EXPECT_EQ(value, static_cast<std::uint64_t>(key) * 3);
    }
    EXPECT_EQ(map.size(), 250u);
  }
  // Churn must hit the freelists: node count far exceeds what bump
  // space alone would serve.
  EXPECT_GT(arena.stats().freelist_hits, 1000u);
  // All nodes returned; only the map's internal bookkeeping is gone.
  EXPECT_EQ(arena.stats().live_bytes, 0u);
}

TEST(ArenaAllocator, EqualityFollowsTheArena) {
  Arena a;
  Arena b;
  const ArenaAllocator<int> alloc_a(&a);
  const ArenaAllocator<int> alloc_a2(&a);
  const ArenaAllocator<long> alloc_a_long(alloc_a);  // converting ctor
  const ArenaAllocator<int> alloc_b(&b);
  EXPECT_TRUE(alloc_a == alloc_a2);
  EXPECT_TRUE(alloc_a == alloc_a_long);
  EXPECT_FALSE(alloc_a == alloc_b);
}

}  // namespace
}  // namespace wm::util
