// ContinuousMonitor: online emission equivalence against the batch
// decoder, multi-viewer separation, idle eviction and memory shedding,
// and the live-source drivers (InjectableTap, TimedReplaySource).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "wm/core/pipeline.hpp"
#include "wm/monitor/live_source.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/monitor/workload.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::monitor {
namespace {

using core::AttackPipeline;
using core::CalibrationSession;
using story::Choice;

std::vector<Choice> alternating(std::size_t n, bool first_non_default) {
  std::vector<Choice> choices;
  for (std::size_t i = 0; i < n; ++i) {
    const bool non_default = (i % 2 == 0) == first_non_default;
    choices.push_back(non_default ? Choice::kNonDefault : Choice::kDefault);
  }
  return choices;
}

AttackPipeline calibrated_pipeline(const story::StoryGraph& graph) {
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 77000 + s;
    auto session = sim::simulate_session(graph, alternating(13, true), config);
    calibration.push_back(CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

/// Owning copies of everything the monitor emitted, per viewer.
struct CollectingSink final : engine::EventSink {
  struct Emitted {
    core::InferredQuestion question;
    util::SimTime at;
    bool final = false;
  };
  std::map<std::string, std::vector<Emitted>> choices;
  std::map<std::string, std::size_t> opened;
  std::vector<std::pair<std::string, engine::ViewerEvictedEvent::Reason>>
      evictions;
  std::size_t gaps = 0;

  void on_question_opened(const engine::QuestionOpenedEvent& event) override {
    ++opened[std::string(event.client)];
  }
  void on_choice_inferred(const engine::ChoiceInferredEvent& event) override {
    choices[std::string(event.client)].push_back(
        Emitted{event.question, event.at, event.final});
  }
  void on_viewer_evicted(const engine::ViewerEvictedEvent& event) override {
    evictions.emplace_back(std::string(event.client), event.reason);
  }
  void on_gap_observed(const engine::GapObservedEvent&) override { ++gaps; }
};

MonitorConfig test_config() {
  MonitorConfig config;
  // The sim's choice window is a 10s UI constant; overrides land inside
  // it, so the evidence window must exceed it for online == batch.
  config.evidence_window = util::Duration::seconds(12);
  return config;
}

TEST(Monitor, OnlineEmissionsMatchBatchDecode) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline attack = calibrated_pipeline(graph);

  sim::SessionConfig config;
  config.seed = 77100;
  const auto victim = sim::simulate_session(graph, alternating(13, false), config);

  // Batch reference on the identical packets.
  engine::VectorSource batch_source(&victim.capture.packets);
  const core::InferredSession batch = attack.infer(batch_source).combined;
  ASSERT_FALSE(batch.questions.empty());

  CollectingSink sink;
  ContinuousMonitor monitor(attack.classifier(), test_config(), &sink);
  engine::VectorSource live_source(&victim.capture.packets);
  monitor.consume(live_source);
  const MonitorStats stats = monitor.finish();

  ASSERT_EQ(sink.choices.size(), 1u);
  const auto& emitted = sink.choices.begin()->second;
  ASSERT_EQ(emitted.size(), batch.questions.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i].question.choice, batch.questions[i].choice) << i;
    EXPECT_EQ(emitted[i].question.question_time.nanos(),
              batch.questions[i].question_time.nanos()) << i;
    EXPECT_NEAR(emitted[i].question.confidence, batch.questions[i].confidence,
                1e-12) << i;
    EXPECT_TRUE(emitted[i].final) << i;
    // Answers are emitted no later than the evidence window closes.
    EXPECT_LE((emitted[i].at - emitted[i].question.question_time).total_nanos(),
              util::Duration::seconds(12).total_nanos()) << i;
  }
  EXPECT_EQ(stats.choices_inferred, batch.questions.size());
  EXPECT_EQ(stats.questions_opened, sink.opened.begin()->second);
  EXPECT_EQ(stats.viewers_opened, 1u);
  // finish() flushed the viewer.
  ASSERT_EQ(sink.evictions.size(), 1u);
  EXPECT_EQ(sink.evictions[0].second,
            engine::ViewerEvictedEvent::Reason::kShutdown);
  EXPECT_EQ(monitor.active_viewers(), 0u);
}

TEST(Monitor, TwoViewersDecodeIndependently) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline attack = calibrated_pipeline(graph);

  sim::SessionConfig config_a;
  config_a.seed = 77200;
  auto a = sim::simulate_session(graph, alternating(13, false), config_a);
  sim::SessionConfig config_b;
  config_b.seed = 77201;
  config_b.packetize.client_ip = net::Ipv4Address(10, 0, 0, 99);
  config_b.packetize.cdn_client_port = 52000;
  config_b.packetize.api_client_port = 52001;
  auto b = sim::simulate_session(graph, alternating(13, true), config_b);

  std::vector<net::Packet> merged;
  for (auto& packet : a.capture.packets) merged.push_back(std::move(packet));
  for (auto& packet : b.capture.packets) {
    packet.timestamp += util::Duration::millis(1700);  // interleave
    merged.push_back(std::move(packet));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::Packet& x, const net::Packet& y) {
                     return x.timestamp < y.timestamp;
                   });

  // Batch per-client reference.
  engine::VectorSource batch_source(&merged);
  core::InferOptions options;
  options.per_client = true;
  const auto batch = attack.infer(batch_source, options);
  ASSERT_EQ(batch.per_client.size(), 2u);

  CollectingSink sink;
  ContinuousMonitor monitor(attack.classifier(), test_config(), &sink);
  engine::VectorSource live_source(&merged);
  monitor.consume(live_source);
  monitor.finish();

  ASSERT_EQ(sink.choices.size(), 2u);
  for (const auto& [client, reference] : batch.per_client) {
    ASSERT_TRUE(sink.choices.count(client)) << client;
    const auto& emitted = sink.choices.at(client);
    ASSERT_EQ(emitted.size(), reference.questions.size()) << client;
    for (std::size_t i = 0; i < emitted.size(); ++i) {
      EXPECT_EQ(emitted[i].question.choice, reference.questions[i].choice)
          << client << " Q" << i;
    }
  }
}

TEST(Monitor, IdleViewersAgeOutThroughTheWheel) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline attack = calibrated_pipeline(graph);

  sim::SessionConfig config;
  config.seed = 77300;
  const auto victim = sim::simulate_session(graph, alternating(13, false), config);

  MonitorConfig monitor_config = test_config();
  monitor_config.viewer_idle_timeout = util::Duration::seconds(30);
  CollectingSink sink;
  ContinuousMonitor monitor(attack.classifier(), monitor_config, &sink);
  engine::VectorSource source(&victim.capture.packets);
  monitor.consume(source);
  EXPECT_EQ(monitor.active_viewers(), 1u);

  // A quiet heartbeat far past the idle horizon: the viewer must leave
  // without any packet arriving.
  monitor.advance_to(victim.capture.packets.back().timestamp +
                     util::Duration::seconds(120));
  EXPECT_EQ(monitor.active_viewers(), 0u);
  ASSERT_EQ(sink.evictions.size(), 1u);
  EXPECT_EQ(sink.evictions[0].second,
            engine::ViewerEvictedEvent::Reason::kIdle);
  const MonitorStats stats = monitor.finish();
  EXPECT_EQ(stats.viewers_evicted_idle, 1u);
  EXPECT_EQ(stats.viewers_shed, 0u);
}

TEST(Monitor, MemoryCeilingShedsOldestIdleViewer) {
  // A fleet through a deliberately starved byte budget: the monitor
  // must shed oldest-idle viewers (emitting kMemoryShed) instead of
  // growing, and every shed viewer's open question still gets settled.
  WorkloadConfig workload;
  workload.sessions = 24;
  workload.concurrency = 6;
  workload.questions_per_session = 2;
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));

  MonitorConfig config = test_config();
  config.viewer_idle_timeout = util::Duration{};  // isolate shedding
  // Just above the empty-monitor floor (the wheel's slot array): room
  // for a handful of viewers at most.
  ContinuousMonitor probe(classifier, config);
  const std::size_t floor_bytes = probe.memory_bytes();
  config.max_total_bytes = floor_bytes + 4096;

  CollectingSink sink;
  ContinuousMonitor monitor(classifier, config, &sink);
  SyntheticFleetSource fleet(workload);
  monitor.consume(fleet);
  const MonitorStats stats = monitor.finish();

  // A shed viewer whose session keeps sending reopens as a fresh
  // viewer, so opened >= sessions under a starved budget.
  EXPECT_GE(stats.viewers_opened, workload.sessions);
  EXPECT_GT(stats.viewers_shed, 0u);
  // The peak may transiently exceed the budget by the viewer being
  // admitted (shedding runs right after), never by more.
  EXPECT_LE(stats.peak_memory_bytes, config.max_total_bytes + 8192);
  std::size_t shed_events = 0;
  for (const auto& [client, reason] : sink.evictions) {
    if (reason == engine::ViewerEvictedEvent::Reason::kMemoryShed) {
      ++shed_events;
    }
  }
  EXPECT_EQ(shed_events, stats.viewers_shed);
}

TEST(Monitor, InjectableTapDeliversInjectedPackets) {
  WorkloadConfig workload;
  workload.sessions = 1;
  workload.concurrency = 1;
  workload.questions_per_session = 3;
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));

  SyntheticFleetSource fleet(workload);
  std::vector<net::Packet> packets;
  engine::PacketBatch batch;
  while (fleet.read_batch(batch, 64) != 0) {
    for (const net::Packet& packet : batch) packets.push_back(packet);
  }
  ASSERT_FALSE(packets.empty());

  InjectableTap tap(16);  // smaller than the capture: forces recycling
  std::size_t drained = 0;
  engine::PacketBatch drain;
  for (const net::Packet& packet : packets) {
    net::Packet copy = packet;
    // Single-threaded test: drain only when the ring is full, so the
    // blocking first-pop inside read_batch never waits.
    while (!tap.try_inject(copy)) {
      drained += tap.read_batch(drain, 8);
    }
  }
  tap.close();
  EXPECT_TRUE(tap.closed());

  std::size_t got;
  while ((got = tap.read_batch(drain, 32)) != 0) drained += got;
  // Everything injected comes out exactly once.
  EXPECT_EQ(drained, packets.size());
  EXPECT_FALSE(tap.next().has_value());
}

TEST(Monitor, InjectableTapRoundTripsThroughMonitor) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline attack = calibrated_pipeline(graph);
  sim::SessionConfig config;
  config.seed = 77400;
  const auto victim = sim::simulate_session(graph, alternating(13, true), config);

  InjectableTap tap(victim.capture.packets.size() + 1);
  for (const net::Packet& packet : victim.capture.packets) {
    net::Packet copy = packet;
    ASSERT_TRUE(tap.try_inject(copy));
  }
  tap.close();

  CollectingSink sink;
  ContinuousMonitor monitor(attack.classifier(), test_config(), &sink);
  EXPECT_EQ(monitor.consume(tap), victim.capture.packets.size());
  monitor.finish();

  engine::VectorSource batch_source(&victim.capture.packets);
  const core::InferredSession batch = attack.infer(batch_source).combined;
  ASSERT_EQ(sink.choices.size(), 1u);
  EXPECT_EQ(sink.choices.begin()->second.size(), batch.questions.size());
}

TEST(Monitor, TimedReplayPreservesOrderAndPaces) {
  WorkloadConfig workload;
  workload.sessions = 2;
  workload.concurrency = 2;
  workload.questions_per_session = 2;
  SyntheticFleetSource fleet(workload);

  // Collect the reference stream (already capture-time ordered).
  std::vector<net::Packet> reference;
  engine::PacketBatch batch;
  while (fleet.read_batch(batch, 64) != 0) {
    for (const net::Packet& packet : batch) reference.push_back(packet);
  }
  ASSERT_GT(reference.size(), 8u);
  const std::int64_t span_nanos = reference.back().timestamp.nanos() -
                                  reference.front().timestamp.nanos();

  // Replay the same workload at a very high speed: order preserved,
  // everything delivered, and wall time roughly span/speed.
  SyntheticFleetSource again(workload);
  TimedReplaySource::Config replay_config;
  replay_config.speed = 4000.0;
  TimedReplaySource replay(again, replay_config);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<net::Packet> replayed;
  while (replay.read_batch(batch, 64) != 0) {
    for (const net::Packet& packet : batch) replayed.push_back(packet);
  }
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;

  ASSERT_EQ(replayed.size(), reference.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].timestamp.nanos(), reference[i].timestamp.nanos())
        << i;
  }
  EXPECT_EQ(replay.replay_position().nanos(),
            reference.back().timestamp.nanos());
  // Pacing actually slept: at 4000x a multi-second capture takes at
  // least span/4000 of wall time (scheduling slack keeps this loose).
  EXPECT_GE(std::chrono::duration_cast<std::chrono::nanoseconds>(wall_elapsed)
                .count(),
            span_nanos / 4000 / 2);
}

TEST(Monitor, UnpacedReplayIsPassthrough) {
  WorkloadConfig workload;
  workload.sessions = 1;
  workload.concurrency = 1;
  SyntheticFleetSource fleet(workload);
  TimedReplaySource::Config config;
  config.speed = 0.0;  // unpaced
  TimedReplaySource replay(fleet, config);

  std::size_t total = 0;
  engine::PacketBatch batch;
  while (replay.read_batch(batch, 64) != 0) total += batch.size();
  EXPECT_GT(total, 0u);
  EXPECT_GT(replay.replay_position().nanos(), 0);
  EXPECT_FALSE(replay.error().has_value());
}

}  // namespace
}  // namespace wm::monitor
