#include <gtest/gtest.h>

#include "wm/story/bandersnatch.hpp"
#include "wm/story/generator.hpp"
#include "wm/story/serialize.hpp"
#include "wm/story/graph.hpp"

namespace wm::story {
namespace {

TEST(ChoiceNotation, MatchesPaper) {
  EXPECT_EQ(choice_notation(1, Choice::kDefault), "S1");
  EXPECT_EQ(choice_notation(2, Choice::kNonDefault), "S2'");
  EXPECT_EQ(to_string(Choice::kDefault), "default");
  EXPECT_EQ(to_string(Choice::kNonDefault), "non-default");
}

TEST(StoryGraph, RejectsDegenerateConstruction) {
  EXPECT_THROW(StoryGraph("x", 0, {}), std::invalid_argument);
  Segment seg;
  seg.name = "only";
  seg.duration = util::Duration::seconds(10);
  seg.is_ending = true;
  EXPECT_THROW(StoryGraph("x", 5, {seg}), std::invalid_argument);
}

TEST(StoryGraph, SegmentBoundsChecked) {
  const StoryGraph graph = make_bandersnatch();
  EXPECT_THROW((void)graph.segment(static_cast<SegmentId>(graph.segment_count())),
               std::out_of_range);
}

TEST(Bandersnatch, IsValid) {
  const StoryGraph graph = make_bandersnatch();
  const auto problems = graph.validate();
  for (const std::string& problem : problems) {
    ADD_FAILURE() << problem;
  }
  EXPECT_TRUE(problems.empty());
}

TEST(Bandersnatch, HasExpectedShape) {
  const StoryGraph graph = make_bandersnatch();
  EXPECT_GE(graph.segment_count(), 20u);
  EXPECT_GE(graph.choice_segments().size(), 12u);
  // Segment 0 is the opening and has no choice.
  const Segment& opening = graph.segment(graph.start());
  EXPECT_EQ(opening.name, "SEGMENT_0_OPENING");
  EXPECT_FALSE(opening.has_choice());
}

TEST(Bandersnatch, ContainsPaperQuotedQuestions) {
  const StoryGraph graph = make_bandersnatch();
  bool frosties = false;
  bool therapist = false;
  bool tea = false;
  for (SegmentId id : graph.choice_segments()) {
    const std::string& prompt = graph.segment(id).choice->prompt;
    frosties |= prompt.find("Frosties") != std::string::npos;
    therapist |= prompt.find("therapist") != std::string::npos;
    tea |= prompt.find("tea") != std::string::npos;
  }
  EXPECT_TRUE(frosties);
  EXPECT_TRUE(therapist);
  EXPECT_TRUE(tea);
}

TEST(Bandersnatch, AllDefaultPathReachesEnding) {
  const StoryGraph graph = make_bandersnatch();
  const std::vector<Choice> defaults(20, Choice::kDefault);
  const auto traversal = graph.traverse(defaults);
  EXPECT_TRUE(traversal.reached_ending);
  EXPECT_GE(traversal.questions.size(), 5u);
  EXPECT_TRUE(graph.segment(traversal.path.back()).is_ending);
}

TEST(Bandersnatch, AllNonDefaultPathReachesEnding) {
  const StoryGraph graph = make_bandersnatch();
  const std::vector<Choice> picks(20, Choice::kNonDefault);
  const auto traversal = graph.traverse(picks);
  EXPECT_TRUE(traversal.reached_ending);
}

TEST(Bandersnatch, EveryEndingReachable) {
  const StoryGraph graph = make_bandersnatch();
  std::set<std::string> endings_found;
  // Enumerate all choice sequences up to depth 6 (questions on any
  // single path are fewer than that before diverging meaningfully) plus
  // exhaustive 2^8 deeper sweep.
  for (unsigned mask = 0; mask < (1u << 10); ++mask) {
    std::vector<Choice> choices;
    for (int bit = 0; bit < 10; ++bit) {
      choices.push_back((mask >> bit) & 1 ? Choice::kNonDefault
                                          : Choice::kDefault);
    }
    const auto traversal = graph.traverse(choices);
    if (traversal.reached_ending) {
      endings_found.insert(graph.segment(traversal.path.back()).name);
    }
  }
  EXPECT_GE(endings_found.size(), 5u);
}

TEST(Bandersnatch, TraversalStopsWhenChoicesRunOut) {
  const StoryGraph graph = make_bandersnatch();
  const auto traversal = graph.traverse({Choice::kDefault});
  EXPECT_FALSE(traversal.reached_ending);
  EXPECT_EQ(traversal.choices_consumed, 1u);
}

TEST(Bandersnatch, Deterministic) {
  const StoryGraph a = make_bandersnatch();
  const StoryGraph b = make_bandersnatch();
  ASSERT_EQ(a.segment_count(), b.segment_count());
  for (SegmentId id = 0; id < a.segment_count(); ++id) {
    EXPECT_EQ(a.segment(id).name, b.segment(id).name);
    EXPECT_EQ(a.segment(id).duration, b.segment(id).duration);
  }
}

// --- generator property tests ------------------------------------------

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, GeneratedGraphsAreValid) {
  util::Rng rng(GetParam());
  GeneratorConfig config;
  config.questions = 3 + static_cast<std::size_t>(GetParam() % 10);
  const StoryGraph graph = generate_story(config, rng);
  const auto problems = graph.validate();
  for (const std::string& problem : problems) ADD_FAILURE() << problem;

  // All-default traversal must hit every spine question and end.
  const std::vector<Choice> defaults(config.questions + 5, Choice::kDefault);
  const auto traversal = graph.traverse(defaults);
  EXPECT_TRUE(traversal.reached_ending);
  EXPECT_EQ(traversal.questions.size(), config.questions);
}

TEST_P(GeneratorProperty, AnyChoiceSequenceTerminates) {
  util::Rng rng(GetParam() * 977);
  GeneratorConfig config;
  config.questions = 6;
  const StoryGraph graph = generate_story(config, rng);
  util::Rng choice_rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Choice> choices;
    for (int i = 0; i < 12; ++i) {
      choices.push_back(choice_rng.bernoulli(0.5) ? Choice::kDefault
                                                  : Choice::kNonDefault);
    }
    const auto traversal = graph.traverse(choices);
    EXPECT_TRUE(traversal.reached_ending);  // generator never strands
    EXPECT_FALSE(traversal.path.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Serialize, BandersnatchRoundTrips) {
  const StoryGraph original = make_bandersnatch();
  const StoryGraph loaded = from_json_text(to_json_text(original));
  ASSERT_EQ(loaded.segment_count(), original.segment_count());
  EXPECT_EQ(loaded.title(), original.title());
  EXPECT_EQ(loaded.start(), original.start());
  for (SegmentId id = 0; id < original.segment_count(); ++id) {
    const Segment& a = original.segment(id);
    const Segment& b = loaded.segment(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.is_ending, b.is_ending);
    EXPECT_EQ(a.has_choice(), b.has_choice());
    if (a.has_choice()) {
      EXPECT_EQ(a.choice->prompt, b.choice->prompt);
      EXPECT_EQ(a.choice->default_next, b.choice->default_next);
      EXPECT_EQ(a.choice->non_default_next, b.choice->non_default_next);
    } else if (!a.is_ending) {
      EXPECT_EQ(a.next, b.next);
    }
  }
  EXPECT_TRUE(loaded.validate().empty());

  // Traversals agree.
  const std::vector<Choice> picks(13, Choice::kNonDefault);
  EXPECT_EQ(original.traverse(picks).path, loaded.traverse(picks).path);
}

TEST(Serialize, GeneratedGraphsRoundTrip) {
  for (std::uint64_t seed : {3u, 17u, 99u}) {
    util::Rng rng(seed);
    GeneratorConfig config;
    config.questions = 5;
    const StoryGraph original = generate_story(config, rng);
    const StoryGraph loaded = from_json_text(to_json_text(original));
    EXPECT_EQ(loaded.segment_count(), original.segment_count());
    EXPECT_TRUE(loaded.validate().empty());
  }
}

TEST(Serialize, RejectsBadReferences) {
  const StoryGraph graph = make_bandersnatch();
  util::JsonValue doc = to_json(graph);
  doc.as_object()["start"] = util::JsonValue(9999);
  EXPECT_THROW(from_json(doc), std::runtime_error);

  util::JsonValue doc2 = to_json(graph);
  doc2.as_object()["segments"] = util::JsonValue(util::JsonArray{});
  EXPECT_THROW(from_json(doc2), std::runtime_error);
}

TEST(Serialize, RejectsMalformedText) {
  EXPECT_THROW(from_json_text("{"), std::runtime_error);
  EXPECT_THROW(from_json_text("{}"), std::runtime_error);
}

TEST(Generator, RejectsBadConfig) {
  util::Rng rng(1);
  GeneratorConfig config;
  config.questions = 0;
  EXPECT_THROW(generate_story(config, rng), std::invalid_argument);
  config.questions = 3;
  config.min_segment_seconds = 10;
  config.max_segment_seconds = 5;
  EXPECT_THROW(generate_story(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace wm::story
