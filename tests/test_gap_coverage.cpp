// Coverage for smaller public surfaces not exercised elsewhere:
// TcpConnectionBuilder edge behaviour, enum renderers, decoder/session
// accessors, behaviour profile edges.
#include <gtest/gtest.h>

#include "wm/core/behavior.hpp"
#include "wm/core/decoder.hpp"
#include "wm/net/packet_builder.hpp"
#include "wm/net/reassembly.hpp"
#include "wm/sim/streaming.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/tls/record_stream.hpp"

namespace wm::net {
namespace {

TcpEndpointConfig endpoint(std::uint8_t last_octet, std::uint16_t port) {
  TcpEndpointConfig config;
  config.mac = *MacAddress::parse("02:00:00:00:00:01");
  config.ip = Ipv4Address(10, 0, 0, last_octet);
  config.port = port;
  return config;
}

TEST(TcpConnectionBuilder, HandshakeSequenceNumbersConsume) {
  TcpConnectionBuilder conn(endpoint(1, 50000), endpoint(2, 443));
  conn.handshake(util::SimTime::from_seconds(0), util::Duration::millis(20));
  ASSERT_EQ(conn.packets().size(), 3u);

  const auto syn = decode_packet(conn.packets()[0]);
  const auto syn_ack = decode_packet(conn.packets()[1]);
  const auto ack = decode_packet(conn.packets()[2]);
  ASSERT_TRUE(syn && syn_ack && ack);
  EXPECT_TRUE(syn->tcp().syn);
  EXPECT_FALSE(syn->tcp().ack);
  EXPECT_TRUE(syn_ack->tcp().syn);
  EXPECT_TRUE(syn_ack->tcp().ack);
  EXPECT_EQ(syn_ack->tcp().ack_number, syn->tcp().sequence + 1);
  EXPECT_EQ(ack->tcp().sequence, syn->tcp().sequence + 1);
  EXPECT_EQ(ack->tcp().ack_number, syn_ack->tcp().sequence + 1);
}

TEST(TcpConnectionBuilder, CloseEmitsFinExchange) {
  TcpConnectionBuilder conn(endpoint(1, 50000), endpoint(2, 443));
  conn.handshake(util::SimTime::from_seconds(0), util::Duration::millis(20));
  conn.close(util::SimTime::from_seconds(1), util::Duration::millis(20));
  ASSERT_EQ(conn.packets().size(), 6u);
  const auto fin = decode_packet(conn.packets()[3]);
  const auto fin_ack = decode_packet(conn.packets()[4]);
  ASSERT_TRUE(fin && fin_ack);
  EXPECT_TRUE(fin->tcp().fin);
  EXPECT_TRUE(fin_ack->tcp().fin);
  EXPECT_TRUE(fin_ack->tcp().ack);
}

TEST(TcpConnectionBuilder, RetransmitRejectsBadIndex) {
  TcpConnectionBuilder conn(endpoint(1, 50000), endpoint(2, 443));
  EXPECT_THROW(conn.retransmit(0, util::SimTime::from_seconds(1)),
               std::out_of_range);
}

TEST(TcpConnectionBuilder, SegmentationAtMss) {
  TcpEndpointConfig client = endpoint(1, 50000);
  client.mss = 100;
  TcpConnectionBuilder conn(client, endpoint(2, 443));
  conn.handshake(util::SimTime::from_seconds(0), util::Duration::millis(20));
  const util::Bytes data(250, 0x5a);
  conn.send(FlowDirection::kClientToServer, util::SimTime::from_seconds(1), data,
            util::Duration::millis(1));
  // 3 handshake + 3 data segments (100+100+50).
  ASSERT_EQ(conn.packets().size(), 6u);
  const auto last = decode_packet(conn.packets().back());
  EXPECT_EQ(last->transport_payload.size(), 50u);
  EXPECT_TRUE(last->tcp().psh);

  // take_packets drains.
  auto taken = conn.take_packets();
  EXPECT_EQ(taken.size(), 6u);
  EXPECT_TRUE(conn.packets().empty());
}

TEST(EnumRenderers, Names) {
  EXPECT_EQ(to_string(FlowDirection::kClientToServer), "client->server");
  EXPECT_EQ(to_string(FlowDirection::kServerToClient), "server->client");
  EXPECT_EQ(to_string(IpProtocol::kTcp), "TCP");
  EXPECT_EQ(to_string(IpProtocol::kUdp), "UDP");
  EXPECT_EQ(to_string(IpProtocol::kIcmp), "ICMP");
}

TEST(Reassembly, RstPacketDeliversNothing) {
  TcpConnectionReassembler reassembler;
  TcpHeader tcp;
  tcp.source_port = 1;
  tcp.destination_port = 2;
  tcp.rst = true;
  const Packet packet = build_tcp_packet(
      util::SimTime::from_seconds(0), *MacAddress::parse("02:00:00:00:00:01"),
      *MacAddress::parse("02:00:00:00:00:02"), Ipv4Address(10, 0, 0, 1),
      Ipv4Address(10, 0, 0, 2), tcp, util::Bytes(10, 0x41), 1);
  const auto decoded = decode_packet(packet);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(reassembler.on_packet(*decoded, FlowDirection::kClientToServer)
                  .empty());
}

}  // namespace
}  // namespace wm::net

namespace wm::core {
namespace {

TEST(InferredSession, ChoicesAccessor) {
  InferredSession session;
  InferredQuestion q1;
  q1.choice = story::Choice::kDefault;
  InferredQuestion q2;
  q2.choice = story::Choice::kNonDefault;
  session.questions = {q1, q2};
  const auto choices = session.choices();
  ASSERT_EQ(choices.size(), 2u);
  EXPECT_EQ(choices[0], story::Choice::kDefault);
  EXPECT_EQ(choices[1], story::Choice::kNonDefault);
}

TEST(Behavior, CustomRules) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const std::vector<TraitRule> rules{{"sugar", "sweet-tooth"}};
  const auto profile = profile_viewer(
      graph, std::vector<story::Choice>(13, story::Choice::kDefault), rules);
  ASSERT_EQ(profile.tags.size(), 1u);
  EXPECT_EQ(profile.tags[0], "sweet-tooth");
}

TEST(RecordClassNames, Rendered) {
  EXPECT_EQ(to_string(RecordClass::kType1Json), "type-1 JSON");
  EXPECT_EQ(to_string(RecordClass::kType2Json), "type-2 JSON");
  EXPECT_EQ(to_string(RecordClass::kOther), "others");
}

}  // namespace
}  // namespace wm::core

namespace wm::sim {
namespace {

TEST(EnumRenderers, SimNames) {
  EXPECT_EQ(to_string(AppFlow::kCdn), "CDN");
  EXPECT_EQ(to_string(AppFlow::kApi), "API");
  EXPECT_EQ(to_string(ClientMessageKind::kDecoyUpload), "decoy upload");
  EXPECT_EQ(to_string(ClientMessageKind::kChunkRequest), "chunk request");
}

TEST(RecordEvent, ClientApplicationDataPredicate) {
  tls::RecordEvent event;
  event.direction = net::FlowDirection::kClientToServer;
  event.content_type = tls::ContentType::kApplicationData;
  EXPECT_TRUE(event.is_client_application_data());
  event.direction = net::FlowDirection::kServerToClient;
  EXPECT_FALSE(event.is_client_application_data());
  event.direction = net::FlowDirection::kClientToServer;
  event.content_type = tls::ContentType::kHandshake;
  EXPECT_FALSE(event.is_client_application_data());
}

}  // namespace
}  // namespace wm::sim
