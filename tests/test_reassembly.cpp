#include "wm/net/reassembly.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace wm::net {
namespace {

using util::Bytes;
using util::SimTime;

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string drain_to_string(const std::vector<StreamChunk>& chunks) {
  std::string out;
  for (const StreamChunk& chunk : chunks) {
    out.append(chunk.data.begin(), chunk.data.end());
  }
  return out;
}

TEST(Reassembly, InOrderDelivery) {
  TcpStreamReassembler r;
  auto first = r.on_segment(SimTime::from_seconds(1), 1000, true, false,
                            bytes_of("hello "));
  auto second = r.on_segment(SimTime::from_seconds(2), 1007, false, false,
                             bytes_of("world"));
  EXPECT_EQ(drain_to_string(first), "hello ");
  EXPECT_EQ(drain_to_string(second), "world");
  EXPECT_EQ(r.delivered_bytes(), 11u);
  EXPECT_TRUE(r.synchronized());
}

TEST(Reassembly, SynConsumesSequenceSlot) {
  TcpStreamReassembler r;
  // Pure SYN (no payload), then data at ISN+1.
  auto none = r.on_segment(SimTime::from_seconds(0), 5000, true, false, {});
  EXPECT_TRUE(none.empty());
  auto data =
      r.on_segment(SimTime::from_seconds(1), 5001, false, false, bytes_of("abc"));
  EXPECT_EQ(drain_to_string(data), "abc");
}

TEST(Reassembly, OutOfOrderBufferedThenDelivered) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  auto late = r.on_segment(SimTime::from_seconds(1), 104, false, false,
                           bytes_of("DEF"));
  EXPECT_TRUE(late.empty());  // gap at 101..103
  auto fill =
      r.on_segment(SimTime::from_seconds(2), 101, false, false, bytes_of("ABC"));
  EXPECT_EQ(drain_to_string(fill), "ABCDEF");
  EXPECT_EQ(r.delivered_bytes(), 6u);
}

TEST(Reassembly, RetransmissionIgnored) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 101, false, false, bytes_of("xyz"));
  auto dup =
      r.on_segment(SimTime::from_seconds(2), 101, false, false, bytes_of("xyz"));
  EXPECT_TRUE(dup.empty());
  EXPECT_EQ(r.delivered_bytes(), 3u);
}

TEST(Reassembly, PartialOverlapTrimmed) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 101, false, false, bytes_of("abcd"));
  // Retransmit covering old data plus two new bytes.
  auto more =
      r.on_segment(SimTime::from_seconds(2), 103, false, false, bytes_of("cdEF"));
  EXPECT_EQ(drain_to_string(more), "EF");
  EXPECT_EQ(r.delivered_bytes(), 6u);
}

TEST(Reassembly, OverlapAmongBufferedSegmentsFirstWins) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Buffer 105.."WXYZ" out of order.
  (void)r.on_segment(SimTime::from_seconds(1), 105, false, false, bytes_of("WXYZ"));
  // Overlapping later arrival 103.."abWX??" — only 103..104 and beyond-109 are new.
  (void)r.on_segment(SimTime::from_seconds(2), 103, false, false,
                     bytes_of("ab????"));
  auto fill =
      r.on_segment(SimTime::from_seconds(3), 101, false, false, bytes_of("12"));
  // First-arrival content survives in the overlap region.
  EXPECT_EQ(drain_to_string(fill), "12abWXYZ");
}

TEST(Reassembly, SequenceWraparound) {
  TcpStreamReassembler r;
  const std::uint32_t near_wrap = 0xfffffffc;
  (void)r.on_segment(SimTime::from_seconds(0), near_wrap, true, false, {});
  auto first = r.on_segment(SimTime::from_seconds(1), near_wrap + 1, false, false,
                            bytes_of("abc"));  // fills fffffffd..ffffffff
  EXPECT_EQ(drain_to_string(first), "abc");
  // Next segment wraps to sequence 0.
  auto wrapped =
      r.on_segment(SimTime::from_seconds(2), 0, false, false, bytes_of("def"));
  EXPECT_EQ(drain_to_string(wrapped), "def");
  EXPECT_EQ(r.delivered_bytes(), 6u);
}

TEST(Reassembly, FinMarksFinished) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 10, true, false, {});
  EXPECT_FALSE(r.finished());
  (void)r.on_segment(SimTime::from_seconds(1), 11, false, true, bytes_of("end"));
  EXPECT_TRUE(r.finished());
}

TEST(Reassembly, FinOutOfOrderWaitsForData) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 10, true, false, {});
  // FIN arrives with the last bytes, but earlier bytes are missing.
  (void)r.on_segment(SimTime::from_seconds(1), 14, false, true, bytes_of("zz"));
  EXPECT_FALSE(r.finished());
  (void)r.on_segment(SimTime::from_seconds(2), 11, false, false, bytes_of("aaa"));
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(r.delivered_bytes(), 5u);
}

TEST(Reassembly, BufferBudgetDropsRunawayData) {
  TcpStreamReassembler::Config config;
  config.max_buffered_bytes = 8;
  TcpStreamReassembler r(config);
  (void)r.on_segment(SimTime::from_seconds(0), 0, true, false, {});
  // Far-ahead segments exceeding the budget get dropped.
  (void)r.on_segment(SimTime::from_seconds(1), 100, false, false, bytes_of("12345678"));
  EXPECT_EQ(r.dropped_bytes(), 0u);
  (void)r.on_segment(SimTime::from_seconds(2), 200, false, false, bytes_of("abc"));
  EXPECT_EQ(r.dropped_bytes(), 3u);
}

TEST(Reassembly, StreamOffsetsAreContiguous) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 500, true, false, {});
  auto a = r.on_segment(SimTime::from_seconds(1), 501, false, false, bytes_of("aa"));
  auto b = r.on_segment(SimTime::from_seconds(2), 503, false, false, bytes_of("bbb"));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].stream_offset, 0u);
  EXPECT_EQ(b[0].stream_offset, 2u);
}

TEST(Reassembly, MidStreamCaptureWithoutSyn) {
  TcpStreamReassembler r;
  auto data = r.on_segment(SimTime::from_seconds(5), 777777, false, false,
                           bytes_of("midstream"));
  EXPECT_EQ(drain_to_string(data), "midstream");
  EXPECT_TRUE(r.synchronized());
}

TEST(Reassembly, SegmentSpanningMultipleBufferedPiecesKeepsTail) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Buffer two islands: 105-106 and 109-110.
  (void)r.on_segment(SimTime::from_seconds(1), 105, false, false, bytes_of("CC"));
  (void)r.on_segment(SimTime::from_seconds(2), 109, false, false, bytes_of("EE"));
  // One big segment 103..112 spanning both islands; the pieces between
  // and after the islands must survive.
  (void)r.on_segment(SimTime::from_seconds(3), 103, false, false,
                     bytes_of("bb**dd**ff"));
  auto fill =
      r.on_segment(SimTime::from_seconds(4), 101, false, false, bytes_of("aa"));
  EXPECT_EQ(drain_to_string(fill), "aabbCCddEEff");
}

TEST(Reassembly, ManySegmentsRandomOrder) {
  // Property-style: split a byte string into segments, deliver in a
  // scrambled order, expect exact reconstruction.
  std::string payload;
  for (int i = 0; i < 997; ++i) payload.push_back(static_cast<char>('A' + i % 26));

  struct Seg {
    std::uint32_t seq;
    std::string data;
  };
  std::vector<Seg> segments;
  const std::uint32_t isn = 42;
  for (std::size_t offset = 0; offset < payload.size(); offset += 83) {
    const std::size_t len = std::min<std::size_t>(83, payload.size() - offset);
    segments.push_back(
        Seg{static_cast<std::uint32_t>(isn + 1 + offset), payload.substr(offset, len)});
  }
  // Deterministic scramble.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::swap(segments[i], segments[(i * 7 + 3) % segments.size()]);
  }

  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), isn, true, false, {});
  std::string reconstructed;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto chunks =
        r.on_segment(SimTime::from_seconds(1.0 + 0.001 * static_cast<double>(i)),
                     segments[i].seq, false, false, bytes_of(segments[i].data));
    reconstructed += drain_to_string(chunks);
  }
  EXPECT_EQ(reconstructed, payload);
}

}  // namespace
}  // namespace wm::net
