#include "wm/net/reassembly.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace wm::net {
namespace {

using util::Bytes;
using util::SimTime;

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string drain_to_string(const std::vector<StreamItem>& items) {
  std::string out;
  for (const StreamItem& item : items) {
    if (item.kind != StreamItem::Kind::kChunk) continue;
    out.append(item.chunk.data.begin(), item.chunk.data.end());
  }
  return out;
}

std::vector<StreamChunk> chunks_of(const std::vector<StreamItem>& items) {
  std::vector<StreamChunk> out;
  for (const StreamItem& item : items) {
    if (item.kind == StreamItem::Kind::kChunk) out.push_back(item.chunk);
  }
  return out;
}

std::vector<StreamGap> gaps_of(const std::vector<StreamItem>& items) {
  std::vector<StreamGap> out;
  for (const StreamItem& item : items) {
    if (item.kind == StreamItem::Kind::kGap) out.push_back(item.gap);
  }
  return out;
}

TEST(Reassembly, InOrderDelivery) {
  TcpStreamReassembler r;
  auto first = r.on_segment(SimTime::from_seconds(1), 1000, true, false,
                            bytes_of("hello "));
  auto second = r.on_segment(SimTime::from_seconds(2), 1007, false, false,
                             bytes_of("world"));
  EXPECT_EQ(drain_to_string(first), "hello ");
  EXPECT_EQ(drain_to_string(second), "world");
  EXPECT_EQ(r.delivered_bytes(), 11u);
  EXPECT_TRUE(r.synchronized());
}

TEST(Reassembly, SynConsumesSequenceSlot) {
  TcpStreamReassembler r;
  // Pure SYN (no payload), then data at ISN+1.
  auto none = r.on_segment(SimTime::from_seconds(0), 5000, true, false, {});
  EXPECT_TRUE(none.empty());
  auto data =
      r.on_segment(SimTime::from_seconds(1), 5001, false, false, bytes_of("abc"));
  EXPECT_EQ(drain_to_string(data), "abc");
}

TEST(Reassembly, OutOfOrderBufferedThenDelivered) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  auto late = r.on_segment(SimTime::from_seconds(1), 104, false, false,
                           bytes_of("DEF"));
  EXPECT_TRUE(late.empty());  // gap at 101..103
  auto fill =
      r.on_segment(SimTime::from_seconds(2), 101, false, false, bytes_of("ABC"));
  EXPECT_EQ(drain_to_string(fill), "ABCDEF");
  EXPECT_EQ(r.delivered_bytes(), 6u);
}

TEST(Reassembly, RetransmissionIgnored) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 101, false, false, bytes_of("xyz"));
  auto dup =
      r.on_segment(SimTime::from_seconds(2), 101, false, false, bytes_of("xyz"));
  EXPECT_TRUE(dup.empty());
  EXPECT_EQ(r.delivered_bytes(), 3u);
}

TEST(Reassembly, PartialOverlapTrimmed) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 101, false, false, bytes_of("abcd"));
  // Retransmit covering old data plus two new bytes.
  auto more =
      r.on_segment(SimTime::from_seconds(2), 103, false, false, bytes_of("cdEF"));
  EXPECT_EQ(drain_to_string(more), "EF");
  EXPECT_EQ(r.delivered_bytes(), 6u);
}

TEST(Reassembly, OverlapAmongBufferedSegmentsFirstWins) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Buffer 105.."WXYZ" out of order.
  (void)r.on_segment(SimTime::from_seconds(1), 105, false, false, bytes_of("WXYZ"));
  // Overlapping later arrival 103.."abWX??" — only 103..104 and beyond-109 are new.
  (void)r.on_segment(SimTime::from_seconds(2), 103, false, false,
                     bytes_of("ab????"));
  auto fill =
      r.on_segment(SimTime::from_seconds(3), 101, false, false, bytes_of("12"));
  // First-arrival content survives in the overlap region.
  EXPECT_EQ(drain_to_string(fill), "12abWXYZ");
}

TEST(Reassembly, SequenceWraparound) {
  TcpStreamReassembler r;
  const std::uint32_t near_wrap = 0xfffffffc;
  (void)r.on_segment(SimTime::from_seconds(0), near_wrap, true, false, {});
  auto first = r.on_segment(SimTime::from_seconds(1), near_wrap + 1, false, false,
                            bytes_of("abc"));  // fills fffffffd..ffffffff
  EXPECT_EQ(drain_to_string(first), "abc");
  // Next segment wraps to sequence 0.
  auto wrapped =
      r.on_segment(SimTime::from_seconds(2), 0, false, false, bytes_of("def"));
  EXPECT_EQ(drain_to_string(wrapped), "def");
  EXPECT_EQ(r.delivered_bytes(), 6u);
}

TEST(Reassembly, FinMarksFinished) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 10, true, false, {});
  EXPECT_FALSE(r.finished());
  (void)r.on_segment(SimTime::from_seconds(1), 11, false, true, bytes_of("end"));
  EXPECT_TRUE(r.finished());
}

TEST(Reassembly, FinOutOfOrderWaitsForData) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 10, true, false, {});
  // FIN arrives with the last bytes, but earlier bytes are missing.
  (void)r.on_segment(SimTime::from_seconds(1), 14, false, true, bytes_of("zz"));
  EXPECT_FALSE(r.finished());
  (void)r.on_segment(SimTime::from_seconds(2), 11, false, false, bytes_of("aaa"));
  EXPECT_TRUE(r.finished());
  EXPECT_EQ(r.delivered_bytes(), 5u);
}

TEST(Reassembly, BufferBudgetDropsRunawayData) {
  TcpStreamReassembler::Config config;
  config.max_buffered_bytes = 8;
  TcpStreamReassembler r(config);
  (void)r.on_segment(SimTime::from_seconds(0), 0, true, false, {});
  // Far-ahead segments exceeding the budget get dropped.
  (void)r.on_segment(SimTime::from_seconds(1), 100, false, false, bytes_of("12345678"));
  EXPECT_EQ(r.dropped_bytes(), 0u);
  (void)r.on_segment(SimTime::from_seconds(2), 200, false, false, bytes_of("abc"));
  EXPECT_EQ(r.dropped_bytes(), 3u);
}

TEST(Reassembly, StreamOffsetsAreContiguous) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 500, true, false, {});
  auto a = r.on_segment(SimTime::from_seconds(1), 501, false, false, bytes_of("aa"));
  auto b = r.on_segment(SimTime::from_seconds(2), 503, false, false, bytes_of("bbb"));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].chunk.stream_offset, 0u);
  EXPECT_EQ(b[0].chunk.stream_offset, 2u);
}

TEST(Reassembly, MidStreamCaptureWithoutSyn) {
  TcpStreamReassembler r;
  auto data = r.on_segment(SimTime::from_seconds(5), 777777, false, false,
                           bytes_of("midstream"));
  EXPECT_EQ(drain_to_string(data), "midstream");
  EXPECT_TRUE(r.synchronized());
}

TEST(Reassembly, SegmentSpanningMultipleBufferedPiecesKeepsTail) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Buffer two islands: 105-106 and 109-110.
  (void)r.on_segment(SimTime::from_seconds(1), 105, false, false, bytes_of("CC"));
  (void)r.on_segment(SimTime::from_seconds(2), 109, false, false, bytes_of("EE"));
  // One big segment 103..112 spanning both islands; the pieces between
  // and after the islands must survive.
  (void)r.on_segment(SimTime::from_seconds(3), 103, false, false,
                     bytes_of("bb**dd**ff"));
  auto fill =
      r.on_segment(SimTime::from_seconds(4), 101, false, false, bytes_of("aa"));
  EXPECT_EQ(drain_to_string(fill), "aabbCCddEEff");
}

TEST(Reassembly, ManySegmentsRandomOrder) {
  // Property-style: split a byte string into segments, deliver in a
  // scrambled order, expect exact reconstruction.
  std::string payload;
  for (int i = 0; i < 997; ++i) payload.push_back(static_cast<char>('A' + i % 26));

  struct Seg {
    std::uint32_t seq;
    std::string data;
  };
  std::vector<Seg> segments;
  const std::uint32_t isn = 42;
  for (std::size_t offset = 0; offset < payload.size(); offset += 83) {
    const std::size_t len = std::min<std::size_t>(83, payload.size() - offset);
    segments.push_back(
        Seg{static_cast<std::uint32_t>(isn + 1 + offset), payload.substr(offset, len)});
  }
  // Deterministic scramble.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    std::swap(segments[i], segments[(i * 7 + 3) % segments.size()]);
  }

  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), isn, true, false, {});
  std::string reconstructed;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto chunks =
        r.on_segment(SimTime::from_seconds(1.0 + 0.001 * static_cast<double>(i)),
                     segments[i].seq, false, false, bytes_of(segments[i].data));
    reconstructed += drain_to_string(chunks);
  }
  EXPECT_EQ(reconstructed, payload);
}

// --- Loss tolerance: gaps, reorder windows, timestamps ---------------

TEST(Reassembly, ReorderedChunkKeepsFirstArrivalTimestamp) {
  // Regression: drain() used to stamp buffered pieces with the time of
  // the segment that *unblocked* them, so reordering shifted
  // StreamChunk::timestamp and every downstream record time.
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 104, false, false, bytes_of("DEF"));
  const auto items =
      r.on_segment(SimTime::from_seconds(9), 101, false, false, bytes_of("ABC"));
  const auto chunks = chunks_of(items);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].timestamp, SimTime::from_seconds(9));  // the filler
  EXPECT_EQ(chunks[1].timestamp, SimTime::from_seconds(1));  // first arrival
}

TEST(Reassembly, HoleCondemnedAfterSegmentWindow) {
  TcpStreamReassembler::Config config;
  config.reorder_window_segments = 3;
  TcpStreamReassembler r(config);
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Hole at 101..103; buffer segments beyond it until the window trips.
  EXPECT_TRUE(r.on_segment(SimTime::from_seconds(1), 104, false, false,
                           bytes_of("aa")).empty());
  EXPECT_TRUE(r.on_segment(SimTime::from_seconds(2), 106, false, false,
                           bytes_of("bb")).empty());
  EXPECT_TRUE(r.on_segment(SimTime::from_seconds(3), 108, false, false,
                           bytes_of("cc")).empty());
  const auto items = r.on_segment(SimTime::from_seconds(4), 110, false, false,
                                  bytes_of("dd"));
  const auto gaps = gaps_of(items);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].stream_offset, 0u);
  EXPECT_EQ(gaps[0].length, 3u);
  EXPECT_EQ(gaps[0].cause, StreamGap::Cause::kReorderWindow);
  EXPECT_EQ(drain_to_string(items), "aabbccdd");
  EXPECT_EQ(r.gaps_emitted(), 1u);
  EXPECT_EQ(r.gap_bytes(), 3u);
}

TEST(Reassembly, HoleCondemnedAfterByteWindow) {
  TcpStreamReassembler::Config config;
  config.reorder_window_bytes = 4;
  config.reorder_window_segments = 1000;
  TcpStreamReassembler r(config);
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  EXPECT_TRUE(r.on_segment(SimTime::from_seconds(1), 103, false, false,
                           bytes_of("abc")).empty());
  const auto items = r.on_segment(SimTime::from_seconds(2), 106, false, false,
                                  bytes_of("def"));
  const auto gaps = gaps_of(items);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].length, 2u);  // bytes 101..102
  EXPECT_EQ(drain_to_string(items), "abcdef");
}

TEST(Reassembly, LateRetransmitStillFillsHoleInsideWindow) {
  // Defaults: windows far larger than this exchange — the hole must
  // NOT be condemned, and the retransmit completes the stream.
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 104, false, false, bytes_of("DEF"));
  const auto items =
      r.on_segment(SimTime::from_seconds(2), 101, false, false, bytes_of("ABC"));
  EXPECT_EQ(drain_to_string(items), "ABCDEF");
  EXPECT_EQ(r.gaps_emitted(), 0u);
}

TEST(Reassembly, FlushCondemnsOutstandingHoles) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 104, false, false, bytes_of("tail"));
  const auto items = r.flush(SimTime::from_seconds(5));
  const auto gaps = gaps_of(items);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].stream_offset, 0u);
  EXPECT_EQ(gaps[0].length, 3u);
  EXPECT_EQ(drain_to_string(items), "tail");
  EXPECT_TRUE(r.finished());
}

TEST(Reassembly, BufferCapDropSurfacesAsGap) {
  TcpStreamReassembler::Config config;
  config.max_buffered_bytes = 8;
  TcpStreamReassembler r(config);
  (void)r.on_segment(SimTime::from_seconds(0), 0, true, false, {});
  (void)r.on_segment(SimTime::from_seconds(1), 100, false, false,
                     bytes_of("12345678"));
  (void)r.on_segment(SimTime::from_seconds(2), 200, false, false, bytes_of("abc"));
  EXPECT_EQ(r.dropped_bytes(), 3u);
  // End of stream: the dropped range must surface as an explicit gap,
  // not silently vanish.
  const auto items = r.flush(SimTime::from_seconds(3));
  bool saw_cap_gap = false;
  for (const StreamGap& gap : gaps_of(items)) {
    if (gap.cause == StreamGap::Cause::kBufferCap) {
      saw_cap_gap = true;
      EXPECT_EQ(gap.length, 3u);
    }
  }
  EXPECT_TRUE(saw_cap_gap);
}

TEST(Reassembly, TruncatedPayloadBecomesGap) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Segment captured short: 3 bytes retained, 5 more were on the wire.
  (void)r.on_segment(SimTime::from_seconds(1), 101, false, false, bytes_of("abc"),
                     /*truncated_bytes=*/5);
  const auto items =
      r.on_segment(SimTime::from_seconds(2), 109, false, false, bytes_of("xyz"));
  const auto gaps = gaps_of(items);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].stream_offset, 3u);
  EXPECT_EQ(gaps[0].length, 5u);
  EXPECT_EQ(gaps[0].cause, StreamGap::Cause::kTruncated);
  EXPECT_EQ(drain_to_string(items), "xyz");
}

TEST(Reassembly, LateDataResurrectsDeadRange) {
  TcpStreamReassembler r;
  (void)r.on_segment(SimTime::from_seconds(0), 100, true, false, {});
  // Truncation marks 104..108 dead...
  (void)r.on_segment(SimTime::from_seconds(1), 101, false, false, bytes_of("abc"),
                     /*truncated_bytes=*/5);
  // ...but a full retransmit of those bytes arrives before delivery
  // reaches the range: the real bytes win and no gap is emitted.
  const auto items =
      r.on_segment(SimTime::from_seconds(2), 104, false, false, bytes_of("DEFGH"));
  EXPECT_EQ(drain_to_string(items), "DEFGH");
  EXPECT_TRUE(gaps_of(items).empty());
  EXPECT_EQ(r.gaps_emitted(), 0u);
}

TEST(Reassembly, RstFlushesBufferedDataAndFinishesStreams) {
  // Regression: RST used to return early, leaving buffered data and
  // finished() == false — the flow never tore down.
  TcpConnectionReassembler conn;

  DecodedPacket syn;
  syn.timestamp = SimTime::from_seconds(0);
  TcpHeader syn_header;
  syn_header.syn = true;
  syn_header.sequence = 100;
  syn.transport = syn_header;
  (void)conn.on_packet(syn, FlowDirection::kClientToServer);

  DecodedPacket data;
  data.timestamp = SimTime::from_seconds(1);
  TcpHeader data_header;
  data_header.sequence = 104;  // leaves a hole at 101..103
  data.transport = data_header;
  const Bytes payload = bytes_of("zz");
  data.transport_payload = payload;
  (void)conn.on_packet(data, FlowDirection::kClientToServer);

  DecodedPacket rst;
  rst.timestamp = SimTime::from_seconds(2);
  TcpHeader rst_header;
  rst_header.rst = true;
  rst_header.sequence = 200;
  rst.transport = rst_header;
  const auto items = conn.on_packet(rst, FlowDirection::kClientToServer);

  std::string delivered;
  std::size_t gaps = 0;
  for (const auto& directed : items) {
    if (directed.item.kind == StreamItem::Kind::kChunk) {
      delivered.append(directed.item.chunk.data.begin(),
                       directed.item.chunk.data.end());
    } else {
      ++gaps;
    }
  }
  EXPECT_EQ(delivered, "zz");
  EXPECT_EQ(gaps, 1u);
  EXPECT_TRUE(conn.reset());
  EXPECT_TRUE(conn.client_stream().finished());
  EXPECT_TRUE(conn.server_stream().finished());

  // Post-RST traffic is ignored.
  EXPECT_TRUE(conn.on_packet(data, FlowDirection::kClientToServer).empty());
}

}  // namespace
}  // namespace wm::net
