#include <gtest/gtest.h>

#include "wm/core/classifier.hpp"

namespace wm::core {
namespace {

LabeledObservation labelled(std::uint16_t length, RecordClass cls,
                            double seconds = 0.0) {
  LabeledObservation out;
  out.observation.timestamp = util::SimTime::from_seconds(seconds);
  out.observation.record_length = length;
  out.label = cls;
  return out;
}

/// Calibration set mimicking the Linux/Firefox bands of Fig. 2.
std::vector<LabeledObservation> fig2_calibration() {
  std::vector<LabeledObservation> out;
  for (std::uint16_t len : {2211, 2212, 2213, 2212, 2211}) {
    out.push_back(labelled(len, RecordClass::kType1Json));
  }
  for (std::uint16_t len : {2992, 3001, 3017, 2999, 3010}) {
    out.push_back(labelled(len, RecordClass::kType2Json));
  }
  for (std::uint16_t len : {404, 650, 2250, 2400, 2800, 4500, 16408}) {
    out.push_back(labelled(len, RecordClass::kOther));
  }
  return out;
}

TEST(IntervalClassifier, LearnsFig2Bands) {
  IntervalClassifier clf(/*guard=*/0);
  clf.fit(fig2_calibration());
  EXPECT_TRUE(clf.fitted());
  EXPECT_FALSE(clf.bands_overlap());
  // Observed covering intervals are 2211-2213 (width 3) and 2992-3017
  // (width 26); the adaptive guard widens each side by width/3.
  EXPECT_EQ(clf.type1_band().to_string(), "2210-2214");
  EXPECT_EQ(clf.type2_band().to_string(), "2984-3025");

  EXPECT_EQ(clf.classify(2212), RecordClass::kType1Json);
  EXPECT_EQ(clf.classify(3000), RecordClass::kType2Json);
  EXPECT_EQ(clf.classify(2992), RecordClass::kType2Json);
  EXPECT_EQ(clf.classify(2500), RecordClass::kOther);
  EXPECT_EQ(clf.classify(100), RecordClass::kOther);
  EXPECT_EQ(clf.classify(16408), RecordClass::kOther);
}

TEST(IntervalClassifier, GuardWidensBands) {
  IntervalClassifier clf(/*guard=*/3);
  clf.fit(fig2_calibration());
  // guard 3 > width/3 = 1 for the type-1 band: [2208, 2216].
  EXPECT_EQ(clf.classify(2208), RecordClass::kType1Json);
  EXPECT_EQ(clf.classify(2216), RecordClass::kType1Json);
  EXPECT_EQ(clf.classify(2217), RecordClass::kOther);
  EXPECT_EQ(clf.classify(2207), RecordClass::kOther);
}

TEST(IntervalClassifier, RequiresBothJsonClasses) {
  IntervalClassifier clf;
  std::vector<LabeledObservation> only_type1{
      labelled(2212, RecordClass::kType1Json)};
  EXPECT_THROW(clf.fit(only_type1), std::invalid_argument);
  std::vector<LabeledObservation> only_type2{
      labelled(3000, RecordClass::kType2Json)};
  EXPECT_THROW(clf.fit(only_type2), std::invalid_argument);
}

TEST(IntervalClassifier, ClassifyBeforeFitThrows) {
  IntervalClassifier clf;
  EXPECT_THROW((void)clf.classify(100), std::logic_error);
}

TEST(IntervalClassifier, OverlappingBandsAbstain) {
  std::vector<LabeledObservation> overlapping;
  for (std::uint16_t len : {1000, 1010}) {
    overlapping.push_back(labelled(len, RecordClass::kType1Json));
  }
  for (std::uint16_t len : {1005, 1020}) {
    overlapping.push_back(labelled(len, RecordClass::kType2Json));
  }
  IntervalClassifier clf(/*guard=*/0);
  clf.fit(overlapping);
  EXPECT_TRUE(clf.bands_overlap());
  // Adaptive widening: type-1 [1000,1010]+3 -> [997,1013]; type-2
  // [1005,1020]+5 -> [1000,1025]. Contested lengths abstain to "other".
  EXPECT_EQ(clf.classify(1007), RecordClass::kOther);
  EXPECT_EQ(clf.classify(1001), RecordClass::kOther);  // now contested too
  // Uncontested parts still classify.
  EXPECT_EQ(clf.classify(998), RecordClass::kType1Json);
  EXPECT_EQ(clf.classify(1015), RecordClass::kType2Json);
}

TEST(KnnClassifier, OneNnSelfClassifiesPerfectly) {
  KnnClassifier clf(1);
  const auto calibration = fig2_calibration();
  clf.fit(calibration);
  const auto matrix = evaluate_classifier(clf, calibration);
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 1.0);
}

TEST(KnnClassifier, ThreeNnMostlyCorrectOnSparseOthers) {
  // With k=3 the sparse "others" points near a dense JSON band can be
  // outvoted — kNN is a sanity baseline, not the paper's method.
  KnnClassifier clf(3);
  const auto calibration = fig2_calibration();
  clf.fit(calibration);
  const auto matrix = evaluate_classifier(clf, calibration);
  EXPECT_GE(matrix.accuracy(), 0.8);
}

TEST(KnnClassifier, NearestNeighbourWins) {
  KnnClassifier clf(1);
  clf.fit(fig2_calibration());
  EXPECT_EQ(clf.classify(2214), RecordClass::kType1Json);
  EXPECT_EQ(clf.classify(2980), RecordClass::kType2Json);
  EXPECT_EQ(clf.classify(500), RecordClass::kOther);
}

TEST(KnnClassifier, EmptyCalibrationRejected) {
  KnnClassifier clf;
  EXPECT_THROW(clf.fit({}), std::invalid_argument);
  EXPECT_THROW((void)clf.classify(1), std::logic_error);
}

TEST(KnnClassifier, KLargerThanDataset) {
  KnnClassifier clf(100);
  std::vector<LabeledObservation> tiny{
      labelled(100, RecordClass::kOther),
      labelled(2212, RecordClass::kType1Json),
      labelled(2212, RecordClass::kType1Json),
      labelled(3000, RecordClass::kType2Json),
      labelled(3000, RecordClass::kType2Json),
      labelled(3001, RecordClass::kType2Json),
  };
  clf.fit(tiny);
  // All points vote; type-2 has plurality.
  EXPECT_EQ(clf.classify(5000), RecordClass::kType2Json);
}

TEST(GaussianNb, ClassifiesFig2) {
  GaussianNbClassifier clf;
  const auto calibration = fig2_calibration();
  clf.fit(calibration);
  EXPECT_EQ(clf.classify(2212), RecordClass::kType1Json);
  EXPECT_EQ(clf.classify(3005), RecordClass::kType2Json);
  EXPECT_EQ(clf.classify(400), RecordClass::kOther);
}

TEST(GaussianNb, EmptyCalibrationRejected) {
  GaussianNbClassifier clf;
  EXPECT_THROW(clf.fit({}), std::invalid_argument);
  EXPECT_THROW((void)clf.classify(1), std::logic_error);
}

TEST(GaussianNb, MissingClassNeverPredicted) {
  GaussianNbClassifier clf;
  std::vector<LabeledObservation> two_class{
      labelled(2212, RecordClass::kType1Json),
      labelled(2213, RecordClass::kType1Json),
      labelled(400, RecordClass::kOther),
      labelled(500, RecordClass::kOther),
  };
  clf.fit(two_class);
  for (std::uint16_t len : {100, 2212, 3000, 10000}) {
    EXPECT_NE(clf.classify(len), RecordClass::kType2Json);
  }
}

TEST(MakeClassifier, FactoryNames) {
  EXPECT_EQ(make_classifier("interval")->name(), "interval");
  EXPECT_EQ(make_classifier("knn")->name(), "knn");
  EXPECT_EQ(make_classifier("gaussian-nb")->name(), "gaussian-nb");
  EXPECT_THROW(make_classifier("svm"), std::invalid_argument);
}

TEST(EvaluateClassifier, ConfusionMatrixShape) {
  IntervalClassifier clf;
  const auto calibration = fig2_calibration();
  clf.fit(calibration);
  const auto matrix = evaluate_classifier(clf, calibration);
  EXPECT_EQ(matrix.total(), calibration.size());
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 1.0);
  EXPECT_EQ(matrix.labels()[0], "type-1");
}

/// Property sweep: for every operational profile, a classifier fitted
/// on samples drawn from that profile classifies fresh samples
/// perfectly — the in-profile disjointness that Fig. 2 demonstrates.
class PerProfileClassification
    : public ::testing::TestWithParam<sim::OperationalConditions> {};

TEST_P(PerProfileClassification, IntervalPerfectWithinProfile) {
  const sim::TrafficProfile profile = sim::make_traffic_profile(GetParam());
  const tls::CipherModel cipher(profile.tls.suite, profile.tls.tls13_pad_to);
  util::Rng rng(4242);

  auto draw = [&](sim::ClientMessageKind kind, RecordClass cls, int n,
                  std::vector<LabeledObservation>& out) {
    for (int i = 0; i < n; ++i) {
      const std::size_t sealed =
          cipher.seal_size(profile.sample_plaintext(kind, rng));
      out.push_back(labelled(static_cast<std::uint16_t>(sealed), cls));
    }
  };

  std::vector<LabeledObservation> calibration;
  draw(sim::ClientMessageKind::kType1Json, RecordClass::kType1Json, 40, calibration);
  draw(sim::ClientMessageKind::kType2Json, RecordClass::kType2Json, 40, calibration);
  draw(sim::ClientMessageKind::kChunkRequest, RecordClass::kOther, 60, calibration);
  draw(sim::ClientMessageKind::kTelemetry, RecordClass::kOther, 60, calibration);
  draw(sim::ClientMessageKind::kLogBatch, RecordClass::kOther, 20, calibration);

  IntervalClassifier clf;
  clf.fit(calibration);
  EXPECT_FALSE(clf.bands_overlap()) << GetParam().to_string();

  std::vector<LabeledObservation> fresh;
  draw(sim::ClientMessageKind::kType1Json, RecordClass::kType1Json, 20, fresh);
  draw(sim::ClientMessageKind::kType2Json, RecordClass::kType2Json, 20, fresh);
  draw(sim::ClientMessageKind::kChunkRequest, RecordClass::kOther, 30, fresh);
  draw(sim::ClientMessageKind::kTelemetry, RecordClass::kOther, 30, fresh);
  const auto matrix = evaluate_classifier(clf, fresh);
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 1.0) << GetParam().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, PerProfileClassification,
    ::testing::ValuesIn(sim::all_operational_conditions()),
    [](const ::testing::TestParamInfo<sim::OperationalConditions>& info) {
      std::string name =
          sim::to_string(info.param.os) + sim::to_string(info.param.platform) +
          sim::to_string(info.param.traffic) +
          sim::to_string(info.param.connection) + sim::to_string(info.param.browser);
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name;
    });

}  // namespace
}  // namespace wm::core
