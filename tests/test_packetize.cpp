// Wire-level session synthesis: decodability, flow structure, SNI, and
// faithfulness of record lengths to the application trace.
#include <gtest/gtest.h>

#include "wm/core/features.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/tls/record_stream.hpp"

namespace wm::sim {
namespace {

using story::Choice;

SessionResult quick_session(std::uint64_t seed,
                            std::vector<Choice> choices = {},
                            OperationalConditions conditions = {}) {
  if (choices.empty()) {
    choices = {Choice::kDefault, Choice::kNonDefault, Choice::kDefault,
               Choice::kNonDefault, Choice::kDefault, Choice::kDefault,
               Choice::kNonDefault, Choice::kDefault, Choice::kDefault,
               Choice::kDefault, Choice::kDefault, Choice::kDefault};
  }
  const story::StoryGraph graph = story::make_bandersnatch();
  SessionConfig config;
  config.conditions = conditions;
  config.seed = seed;
  return simulate_session(graph, choices, config);
}

TEST(Packetize, EveryPacketDecodes) {
  const SessionResult result = quick_session(11);
  ASSERT_GT(result.capture.packets.size(), 100u);
  for (const net::Packet& packet : result.capture.packets) {
    const auto decoded = net::decode_packet(packet);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->has_tcp());
    ASSERT_TRUE(decoded->has_ipv4());
    // IP checksums must all be valid.
    const auto eth = net::parse_ethernet(packet.data);
    const auto ip = net::parse_ipv4(eth->payload);
    EXPECT_TRUE(ip->checksum_valid);
  }
}

TEST(Packetize, PacketsSortedByTimestamp) {
  const SessionResult result = quick_session(12);
  for (std::size_t i = 1; i < result.capture.packets.size(); ++i) {
    EXPECT_LE(result.capture.packets[i - 1].timestamp,
              result.capture.packets[i].timestamp);
  }
}

TEST(Packetize, ContainsCdnAndApiFlowsWithSni) {
  const SessionResult result = quick_session(13);
  const auto streams = tls::extract_record_streams(result.capture.packets);
  ASSERT_GE(streams.size(), 2u);

  bool saw_cdn = false;
  bool saw_api = false;
  for (const auto& stream : streams) {
    if (!stream.sni) continue;
    saw_cdn |= *stream.sni == result.capture.cdn_sni;
    saw_api |= *stream.sni == result.capture.api_sni;
  }
  EXPECT_TRUE(saw_cdn);
  EXPECT_TRUE(saw_api);
}

TEST(Packetize, CrossTrafficPresentAndDistinct) {
  const SessionResult result = quick_session(14);
  EXPECT_GT(result.capture.cross_traffic_flows, 0u);
  const auto streams = tls::extract_record_streams(result.capture.packets);
  EXPECT_GE(streams.size(), 2u + result.capture.cross_traffic_flows);
}

TEST(Packetize, NoDesynchronizedStreams) {
  const SessionResult result = quick_session(15);
  for (const auto& stream : tls::extract_record_streams(result.capture.packets)) {
    EXPECT_FALSE(stream.client_desynchronized) << stream.flow.to_string();
    EXPECT_FALSE(stream.server_desynchronized) << stream.flow.to_string();
  }
}

TEST(Packetize, JsonUploadsVisibleAtGroundTruthTimes) {
  const SessionResult result = quick_session(16);
  const auto observations =
      core::extract_client_records(result.capture.packets);
  const auto labelled = core::label_observations(observations, result.truth);

  std::size_t type1 = 0;
  std::size_t type2 = 0;
  for (const auto& item : labelled) {
    if (item.label == core::RecordClass::kType1Json) ++type1;
    if (item.label == core::RecordClass::kType2Json) ++type2;
  }
  EXPECT_EQ(type1, result.truth.questions.size());
  std::size_t expected_type2 = 0;
  for (const auto& q : result.truth.questions) {
    if (q.choice == Choice::kNonDefault) ++expected_type2;
  }
  EXPECT_EQ(type2, expected_type2);
}

TEST(Packetize, LabeledJsonLengthsFallInProfileBands) {
  const SessionResult result = quick_session(17);
  const auto observations =
      core::extract_client_records(result.capture.packets);
  const auto labelled = core::label_observations(observations, result.truth);
  const auto [t1_lo, t1_hi] =
      result.profile.sealed_band(ClientMessageKind::kType1Json);
  const auto [t2_lo, t2_hi] =
      result.profile.sealed_band(ClientMessageKind::kType2Json);
  for (const auto& item : labelled) {
    if (item.label == core::RecordClass::kType1Json) {
      EXPECT_GE(item.observation.record_length, t1_lo);
      EXPECT_LE(item.observation.record_length, t1_hi);
    } else if (item.label == core::RecordClass::kType2Json) {
      EXPECT_GE(item.observation.record_length, t2_lo);
      EXPECT_LE(item.observation.record_length, t2_hi);
    }
  }
}

TEST(Packetize, RetransmissionsOccurUnderLossyConditions) {
  OperationalConditions lossy;
  lossy.connection = ConnectionType::kWireless;
  lossy.traffic = TrafficCondition::kNight;
  // Aggregate across a few seeds: wireless night loss ~0.6% per batch.
  std::size_t retransmits = 0;
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    retransmits += quick_session(seed, {}, lossy).capture.retransmitted_segments;
  }
  EXPECT_GT(retransmits, 0u);
}

TEST(Packetize, ClientTransformChangesUploadSizes) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const std::vector<Choice> choices(12, Choice::kNonDefault);

  SessionConfig plain;
  plain.seed = 40;
  const SessionResult baseline = simulate_session(graph, choices, plain);

  SessionConfig padded = plain;
  padded.packetize.client_transform = [](ClientMessageKind, std::size_t) {
    return std::vector<std::size_t>{4096};
  };
  const SessionResult transformed = simulate_session(graph, choices, padded);

  // In the padded capture, all API-flow client records have one size.
  const auto streams = tls::extract_record_streams(transformed.capture.packets);
  bool found_api = false;
  for (const auto& stream : streams) {
    if (stream.sni && *stream.sni == transformed.capture.api_sni) {
      found_api = true;
      for (const auto& event : stream.events) {
        if (event.is_client_application_data()) {
          EXPECT_EQ(event.record_length, 4096u + 24u);
        }
      }
    }
  }
  EXPECT_TRUE(found_api);
  (void)baseline;
}

TEST(Packetize, DeterministicForSeed) {
  const SessionResult a = quick_session(55);
  const SessionResult b = quick_session(55);
  ASSERT_EQ(a.capture.packets.size(), b.capture.packets.size());
  for (std::size_t i = 0; i < a.capture.packets.size(); i += 97) {
    EXPECT_EQ(a.capture.packets[i].timestamp, b.capture.packets[i].timestamp);
    EXPECT_EQ(a.capture.packets[i].data, b.capture.packets[i].data);
  }
}

TEST(Packetize, DifferentSeedsDiffer) {
  const SessionResult a = quick_session(56);
  const SessionResult b = quick_session(57);
  EXPECT_NE(a.capture.packets.size(), b.capture.packets.size());
}

}  // namespace
}  // namespace wm::sim
