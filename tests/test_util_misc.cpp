// Tests for strings, csv, time and cli utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "wm/util/cli.hpp"
#include "wm/util/csv.hpp"
#include "wm/util/strings.hpp"
#include "wm/util/time.hpp"

namespace wm::util {
namespace {

// --- strings ---------------------------------------------------------

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(iequals("Firefox", "firefox"));
  EXPECT_FALSE(iequals("Firefox", "Firefo"));
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("netflix.com", "net"));
  EXPECT_FALSE(starts_with("net", "netflix"));
  EXPECT_TRUE(ends_with("trace.pcap", ".pcap"));
  EXPECT_FALSE(ends_with(".pcap", "trace.pcap"));
}

TEST(Strings, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format_percent(0.9634), "96.3%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcdef", 4), "abcd");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
}

// --- csv -------------------------------------------------------------

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"id", "name", "note"});
  writer.row().add(std::int64_t{1}).add("a,b").add(2.5).end();
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"id", "name", "note"}));
  EXPECT_EQ(rows[1][1], "a,b");
  EXPECT_EQ(rows[1][2], "2.5");
}

TEST(Csv, ParseQuotedNewlines) {
  const auto rows = parse_csv("a,\"x\ny\",c\r\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "x\ny");
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, ParseWithoutTrailingNewline) {
  const auto rows = parse_csv("a,b");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, ParseErrors) {
  EXPECT_THROW(parse_csv("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_csv("ab\"cd\""), std::runtime_error);
}

TEST(Csv, EmptyInput) { EXPECT_TRUE(parse_csv("").empty()); }

// --- time ------------------------------------------------------------

TEST(Time, DurationArithmetic) {
  const Duration a = Duration::millis(1500);
  EXPECT_EQ(a.total_nanos(), 1'500'000'000);
  EXPECT_EQ(a.total_micros(), 1'500'000);
  EXPECT_EQ(a.total_millis(), 1500);
  EXPECT_DOUBLE_EQ(a.to_seconds(), 1.5);
  EXPECT_EQ((a + Duration::millis(500)).total_millis(), 2000);
  EXPECT_EQ((a - Duration::seconds(1)).total_millis(), 500);
  EXPECT_EQ((a * 2).total_millis(), 3000);
  EXPECT_EQ((a * 0.5).total_millis(), 750);
  EXPECT_EQ((-a).total_millis(), -1500);
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
}

TEST(Time, DurationFromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(0.0000000015).total_nanos(), 2);
}

TEST(Time, SimTimeArithmetic) {
  const SimTime t = SimTime::from_seconds(2.0);
  EXPECT_EQ((t + Duration::millis(500)).to_seconds(), 2.5);
  EXPECT_EQ((t - SimTime::from_seconds(0.5)).to_seconds(), 1.5);
  EXPECT_LT(SimTime::from_nanos(1), SimTime::from_nanos(2));
}

TEST(Time, Rendering) {
  EXPECT_EQ(Duration::seconds(2).to_string(), "2.000s");
  EXPECT_EQ(Duration::millis(340).to_string(), "340.000ms");
  EXPECT_EQ(Duration::micros(12).to_string(), "12.000us");
  EXPECT_EQ(Duration::nanos(7).to_string(), "7ns");
  EXPECT_EQ(SimTime::from_seconds(12.345).to_string(), "t=12.345s");
}

// --- cli -------------------------------------------------------------

TEST(Cli, ParsesAllTypes) {
  CliParser cli("prog", "test");
  cli.add_string("name", "a name", "default");
  cli.add_int("count", "a count", 3);
  cli.add_double("rate", "a rate", 0.5);
  cli.add_bool("verbose", "chatty");
  const char* argv[] = {"prog", "--name", "x", "--count=7", "--verbose",
                        "positional"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_string("name"), "x");
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsApply) {
  CliParser cli("prog", "test");
  cli.add_int("n", "num", 12);
  cli.add_bool("flag", "flag");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 12);
  EXPECT_FALSE(cli.get_bool("flag"));
}

TEST(Cli, RequiredFlagEnforced) {
  CliParser cli("prog", "test");
  cli.add_string("out", "output path", std::nullopt);
  const char* argv[] = {"prog"};
  EXPECT_THROW(cli.parse(1, argv), std::runtime_error);
}

TEST(Cli, UnknownFlagRejected) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(Cli, BadNumberRejected) {
  CliParser cli("prog", "test");
  cli.add_int("n", "num", 0);
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_int("n"), std::runtime_error);
}

TEST(Cli, MissingValueRejected) {
  CliParser cli("prog", "test");
  cli.add_string("s", "str", "");
  const char* argv[] = {"prog", "--s"};
  EXPECT_THROW(cli.parse(2, argv), std::runtime_error);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.usage().find("prog"), std::string::npos);
}

}  // namespace
}  // namespace wm::util
