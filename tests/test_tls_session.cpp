// TlsSession emission and attacker-side record stream extraction over a
// synthesized connection.
#include <gtest/gtest.h>

#include "wm/net/packet_builder.hpp"
#include "wm/tls/handshake.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/tls/session.hpp"

namespace wm::tls {
namespace {

using net::FlowDirection;
using util::Duration;
using util::SimTime;

TlsSessionConfig firefox_config() {
  TlsSessionConfig config;
  config.suite = CipherSuite::kTlsEcdheRsaAes256GcmSha384;
  config.sni = "occ-0-2433-2430.1.nflxvideo.net";
  return config;
}

TEST(TlsSession, ClientHelloFlightCarriesSni) {
  TlsSession session(firefox_config(), util::Rng(1));
  const auto flight = session.client_hello_flight();
  ASSERT_EQ(flight.size(), 1u);
  EXPECT_EQ(flight[0].content_type, ContentType::kHandshake);
  const auto sni = extract_sni(flight[0].payload);
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, "occ-0-2433-2430.1.nflxvideo.net");
}

TEST(TlsSession, ServerFlightTls12Shape) {
  TlsSession session(firefox_config(), util::Rng(2));
  const auto flight = session.server_hello_flight();
  ASSERT_GE(flight.size(), 1u);
  for (const TlsRecord& record : flight) {
    EXPECT_EQ(record.content_type, ContentType::kHandshake);
    EXPECT_LE(record.payload.size(), kMaxFragmentLength);
  }
  // The flight carries the certificate chain, so it is multi-KB.
  std::size_t total = 0;
  for (const TlsRecord& record : flight) total += record.payload.size();
  EXPECT_GT(total, 4000u);
}

TEST(TlsSession, ServerFlightTls13Shape) {
  TlsSessionConfig config = firefox_config();
  config.suite = CipherSuite::kTlsAes128GcmSha256;
  TlsSession session(config, util::Rng(3));
  const auto flight = session.server_hello_flight();
  ASSERT_EQ(flight.size(), 3u);
  EXPECT_EQ(flight[0].content_type, ContentType::kHandshake);
  EXPECT_EQ(flight[1].content_type, ContentType::kChangeCipherSpec);
  EXPECT_EQ(flight[2].content_type, ContentType::kApplicationData);
}

TEST(TlsSession, SealedSizeMatchesCipherModel) {
  TlsSession session(firefox_config(), util::Rng(4));
  const auto records = session.seal_application_data(std::size_t{2188});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].length(), 2212u);  // +24 GCM overhead
  EXPECT_EQ(records[0].content_type, ContentType::kApplicationData);
}

TEST(TlsSession, FragmentsAtMaxPlaintext) {
  TlsSession session(firefox_config(), util::Rng(5));
  const std::size_t big = kMaxFragmentLength * 2 + 100;
  const auto records = session.seal_application_data(big);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].length(), kMaxFragmentLength + 24);
  EXPECT_EQ(records[1].length(), kMaxFragmentLength + 24);
  EXPECT_EQ(records[2].length(), 100u + 24u);
  EXPECT_EQ(session.records_sealed(), 3u);
}

TEST(TlsSession, CustomFragmentLimit) {
  TlsSessionConfig config = firefox_config();
  config.max_plaintext_fragment = 1000;
  TlsSession session(config, util::Rng(6));
  const auto records = session.seal_application_data(std::size_t{2500});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].length(), 1024u);
}

TEST(TlsSession, ZeroSizePayloadStillEmitsRecord) {
  TlsSession session(firefox_config(), util::Rng(7));
  const auto records = session.seal_application_data(std::size_t{0});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].length(), 24u);
}

TEST(TlsSession, CloseNotifyIsAlert) {
  TlsSession session(firefox_config(), util::Rng(8));
  EXPECT_EQ(session.close_notify().content_type, ContentType::kAlert);
}

// --- record stream extraction -----------------------------------------

class RecordStreamTest : public ::testing::Test {
 protected:
  /// Build a full connection: handshakes + app data both ways.
  std::vector<net::Packet> build_connection(
      std::vector<std::size_t> client_sizes,
      std::vector<std::size_t> server_sizes) {
    TlsSession session(firefox_config(), util::Rng(9));
    net::TcpEndpointConfig client;
    client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
    client.ip = net::Ipv4Address(10, 0, 0, 2);
    client.port = 51000;
    net::TcpEndpointConfig server = client;
    server.mac = *net::MacAddress::parse("02:00:00:00:00:02");
    server.ip = net::Ipv4Address(198, 45, 48, 10);
    server.port = 443;
    net::TcpConnectionBuilder conn(client, server);

    SimTime t = SimTime::from_seconds(0.0);
    conn.handshake(t, Duration::millis(20));
    t += Duration::millis(30);
    conn.send(FlowDirection::kClientToServer, t,
              serialize_records(session.client_hello_flight()));
    t += Duration::millis(20);
    conn.send(FlowDirection::kServerToClient, t,
              serialize_records(session.server_hello_flight()));
    t += Duration::millis(20);
    conn.send(FlowDirection::kClientToServer, t,
              serialize_records(session.client_finished_flight()));
    t += Duration::millis(20);
    for (std::size_t size : client_sizes) {
      conn.send(FlowDirection::kClientToServer, t,
                serialize_records(session.seal_application_data(size)));
      t += Duration::millis(15);
    }
    for (std::size_t size : server_sizes) {
      conn.send(FlowDirection::kServerToClient, t,
                serialize_records(session.seal_application_data(size)));
      t += Duration::millis(15);
    }
    conn.close(t, Duration::millis(20));
    return conn.take_packets();
  }
};

TEST_F(RecordStreamTest, ExtractsFlowWithSniAndRecords) {
  const auto packets = build_connection({2188, 2970}, {100000});
  const auto streams = extract_record_streams(packets);
  ASSERT_EQ(streams.size(), 1u);
  const FlowRecordStream& stream = streams[0];
  ASSERT_TRUE(stream.sni.has_value());
  EXPECT_EQ(*stream.sni, "occ-0-2433-2430.1.nflxvideo.net");
  EXPECT_FALSE(stream.client_desynchronized);
  EXPECT_FALSE(stream.server_desynchronized);

  // Client app records: 2 uploads.
  EXPECT_EQ(stream.count(FlowDirection::kClientToServer,
                         ContentType::kApplicationData),
            2u);
  // Server app data: 100000 bytes -> ceil(100000/16384) = 7 records.
  EXPECT_EQ(stream.count(FlowDirection::kServerToClient,
                         ContentType::kApplicationData),
            7u);

  // Record lengths are exactly plaintext + 24.
  for (const RecordEvent& event : stream.events) {
    if (event.is_client_application_data()) {
      EXPECT_TRUE(event.record_length == 2212 || event.record_length == 2994);
    }
  }
}

TEST_F(RecordStreamTest, EventsAreTimeOrdered) {
  const auto packets = build_connection({500, 600, 700}, {20000});
  const auto streams = extract_record_streams(packets);
  ASSERT_EQ(streams.size(), 1u);
  for (std::size_t i = 1; i < streams[0].events.size(); ++i) {
    EXPECT_LE(streams[0].events[i - 1].timestamp, streams[0].events[i].timestamp);
  }
}

TEST_F(RecordStreamTest, SurvivesCaptureReordering) {
  auto packets = build_connection({2188}, {60000});
  // Swap a couple of adjacent server data packets (capture reorder).
  for (std::size_t i = 10; i + 1 < packets.size(); i += 7) {
    std::swap(packets[i], packets[i + 1]);
  }
  const auto streams = extract_record_streams(packets);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_FALSE(streams[0].client_desynchronized);
  EXPECT_FALSE(streams[0].server_desynchronized);
  EXPECT_EQ(streams[0].count(FlowDirection::kClientToServer,
                             ContentType::kApplicationData),
            1u);
}

TEST_F(RecordStreamTest, SurvivesRetransmission) {
  TlsSession session(firefox_config(), util::Rng(10));
  net::TcpEndpointConfig client;
  client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
  client.ip = net::Ipv4Address(10, 0, 0, 2);
  client.port = 51000;
  net::TcpEndpointConfig server = client;
  server.ip = net::Ipv4Address(198, 45, 48, 10);
  server.port = 443;
  net::TcpConnectionBuilder conn(client, server);
  conn.handshake(SimTime::from_seconds(0), Duration::millis(20));
  conn.send(FlowDirection::kClientToServer, SimTime::from_seconds(0.1),
            serialize_records(session.seal_application_data(std::size_t{2188})));
  const std::size_t data_packet = conn.packets().size() - 1;
  conn.retransmit(data_packet, SimTime::from_seconds(0.2));
  const auto streams = extract_record_streams(conn.take_packets());
  ASSERT_EQ(streams.size(), 1u);
  // The retransmitted record is delivered exactly once.
  EXPECT_EQ(streams[0].count(FlowDirection::kClientToServer,
                             ContentType::kApplicationData),
            1u);
}

TEST(RecordStreamExtractor, IgnoresNonTcpTraffic) {
  RecordStreamExtractor extractor;
  const net::Packet udp = net::build_udp_packet(
      SimTime::from_seconds(0), *net::MacAddress::parse("02:00:00:00:00:01"),
      *net::MacAddress::parse("02:00:00:00:00:02"), net::Ipv4Address(10, 0, 0, 1),
      net::Ipv4Address(8, 8, 8, 8), 5000, 53, util::Bytes{1, 2, 3}, 1);
  extractor.add_packet(udp);
  net::Packet garbage(SimTime::from_seconds(1), util::Bytes(10, 0xff));
  extractor.add_packet(garbage);
  EXPECT_EQ(extractor.packets_seen(), 2u);
  EXPECT_EQ(extractor.packets_undecodable(), 1u);
  EXPECT_TRUE(extractor.finish().empty());
}

}  // namespace
}  // namespace wm::tls
