// Soak: a large synthetic session fleet through ContinuousMonitor with
// a hard byte budget. Proves the headline properties of the continuous
// design: steady RSS over the run, zero ceiling violations, and full
// per-viewer emission (no viewer shed) at fleet scale.
//
// Session count scales with WM_SOAK_SESSIONS (default 100000; CI's PR
// gate sets a short budget, the nightly leg runs the full fleet).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "wm/core/classifier.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/monitor/workload.hpp"

namespace wm::monitor {
namespace {

std::size_t soak_sessions() {
  if (const char* env = std::getenv("WM_SOAK_SESSIONS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 100'000;
}

/// Resident set in bytes, from /proc/self/statm (Linux CI / dev boxes;
/// returns 0 elsewhere and the RSS assertions self-disable).
std::size_t resident_bytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long resident_pages = 0;
  const int scanned =
      std::fscanf(statm, "%lu %lu", &size_pages, &resident_pages);
  std::fclose(statm);
  if (scanned != 2) return 0;
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

TEST(MonitorSoak, FleetRunsAtSteadyStateWithinBudget) {
  WorkloadConfig workload;
  workload.sessions = soak_sessions();
  workload.concurrency = 256;
  workload.questions_per_session = 4;
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));

  MonitorConfig config;
  config.evidence_window = util::Duration::seconds(5);
  config.viewer_idle_timeout = util::Duration::seconds(30);
  config.flow_idle_timeout = util::Duration::seconds(20);
  // A real ceiling, far above steady state (~concurrency viewers live
  // at once) and far below what an unbounded fleet would accumulate.
  config.max_total_bytes = 64u << 20;

  ContinuousMonitor monitor(classifier, config);
  SyntheticFleetSource fleet(workload);

  // Feed in batches so RSS can be sampled mid-run. The warmup sample
  // waits for a quarter of the fleet: by then the viewer arena, timer
  // wheel, and extractor tables are at their working size.
  const std::size_t total_packets = fleet.packets_total();
  const std::size_t warmup_at = total_packets / 4;
  std::size_t fed = 0;
  std::size_t warmup_rss = 0;
  engine::PacketBatch batch;
  while (fleet.read_batch(batch, 512) != 0) {
    for (const net::Packet& packet : batch) monitor.feed(packet);
    fed += batch.size();
    if (warmup_rss == 0 && fed >= warmup_at) warmup_rss = resident_bytes();
  }
  const std::size_t final_rss = resident_bytes();
  const MonitorStats stats = monitor.finish();

  EXPECT_EQ(fed, total_packets);
  EXPECT_EQ(stats.packets, total_packets);

  // --- Bounded memory, proven three ways -----------------------------
  // 1. The monitor's own accounting never found the ceiling violated.
  EXPECT_EQ(stats.ceiling_violations, 0u);
  EXPECT_LE(stats.peak_memory_bytes, config.max_total_bytes);
  // 2. The budget was generous enough that nothing was shed: steady
  //    state really is ~concurrency viewers, not budget-forced.
  EXPECT_EQ(stats.viewers_shed, 0u);
  EXPECT_LT(stats.peak_viewers, workload.sessions);
  // 3. Whole-process RSS is steady: from a quarter of the fleet to the
  //    end, growth stays within 25% + a fixed allocator slack.
  if (warmup_rss != 0 && final_rss != 0) {
    EXPECT_LE(final_rss, warmup_rss + warmup_rss / 4 + (32u << 20))
        << "RSS grew from " << warmup_rss << " to " << final_rss;
  }

  // --- Full emission -------------------------------------------------
  // Every session's viewer opened, and with nothing shed every
  // question got its final answer.
  EXPECT_EQ(stats.viewers_opened, workload.sessions);
  EXPECT_EQ(stats.questions_opened,
            workload.sessions * workload.questions_per_session);
  EXPECT_EQ(stats.choices_inferred, stats.questions_opened);
  // The workload overrides every even-indexed question.
  std::size_t overrides_per_session = 0;
  for (std::size_t q = 0; q < workload.questions_per_session; ++q) {
    if (question_overridden(workload, q)) ++overrides_per_session;
  }
  EXPECT_EQ(stats.overrides, workload.sessions * overrides_per_session);
  // Sessions ended long before the capture did: idle eviction, not
  // shutdown flush, retired nearly everyone.
  EXPECT_GT(stats.viewers_evicted_idle, workload.sessions / 2);
  EXPECT_GT(stats.flows_swept, 0u);
}

}  // namespace
}  // namespace wm::monitor
