// Soak: a large synthetic session fleet through ContinuousMonitor —
// and through a sharded MonitorFleet — with a hard byte budget. Proves
// the headline properties of the continuous design: steady RSS over
// the run, zero ceiling violations, and full per-viewer emission (no
// viewer shed) at fleet scale, single-threaded and sharded alike.
//
// Session count scales with WM_SOAK_SESSIONS (default 100000; CI's PR
// gate sets a short budget, the nightly leg runs the full 10^6-session
// fleet). Shard count for the fleet leg scales with WM_SOAK_SHARDS
// (default 4).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include <unistd.h>

#include "wm/core/classifier.hpp"
#include "wm/monitor/fleet.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/monitor/workload.hpp"
#include "wm/obs/registry.hpp"

namespace wm::monitor {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

std::size_t soak_sessions() { return env_size("WM_SOAK_SESSIONS", 100'000); }
std::size_t soak_shards() { return env_size("WM_SOAK_SHARDS", 4); }

/// Resident set in bytes, from /proc/self/statm (Linux CI / dev boxes;
/// returns 0 elsewhere and the RSS assertions self-disable).
std::size_t resident_bytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long resident_pages = 0;
  const int scanned =
      std::fscanf(statm, "%lu %lu", &size_pages, &resident_pages);
  std::fclose(statm);
  if (scanned != 2) return 0;
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

TEST(MonitorSoak, FleetRunsAtSteadyStateWithinBudget) {
  WorkloadConfig workload;
  workload.sessions = soak_sessions();
  workload.concurrency = 256;
  workload.questions_per_session = 4;
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));

  MonitorConfig config;
  config.evidence_window = util::Duration::seconds(5);
  config.viewer_idle_timeout = util::Duration::seconds(30);
  config.flow_idle_timeout = util::Duration::seconds(20);
  // A real ceiling, far above steady state (~concurrency viewers live
  // at once) and far below what an unbounded fleet would accumulate.
  config.max_total_bytes = 64u << 20;

  ContinuousMonitor monitor(classifier, config);
  SyntheticFleetSource fleet(workload);

  // Feed in batches so RSS can be sampled mid-run. The warmup sample
  // waits for a quarter of the fleet: by then the viewer arena, timer
  // wheel, and extractor tables are at their working size.
  const std::size_t total_packets = fleet.packets_total();
  const std::size_t warmup_at = total_packets / 4;
  std::size_t fed = 0;
  std::size_t warmup_rss = 0;
  engine::PacketBatch batch;
  while (fleet.read_batch(batch, 512) != 0) {
    for (const net::Packet& packet : batch) monitor.feed(packet);
    fed += batch.size();
    if (warmup_rss == 0 && fed >= warmup_at) warmup_rss = resident_bytes();
  }
  const std::size_t final_rss = resident_bytes();
  const MonitorStats stats = monitor.finish();

  EXPECT_EQ(fed, total_packets);
  EXPECT_EQ(stats.packets, total_packets);

  // --- Bounded memory, proven three ways -----------------------------
  // 1. The monitor's own accounting never found the ceiling violated.
  EXPECT_EQ(stats.ceiling_violations, 0u);
  EXPECT_LE(stats.peak_memory_bytes, config.max_total_bytes);
  // 2. The budget was generous enough that nothing was shed: steady
  //    state really is ~concurrency viewers, not budget-forced.
  EXPECT_EQ(stats.viewers_shed, 0u);
  EXPECT_LT(stats.peak_viewers, workload.sessions);
  // 3. Whole-process RSS is steady: from a quarter of the fleet to the
  //    end, growth stays within 25% + a fixed allocator slack.
  if (warmup_rss != 0 && final_rss != 0) {
    EXPECT_LE(final_rss, warmup_rss + warmup_rss / 4 + (32u << 20))
        << "RSS grew from " << warmup_rss << " to " << final_rss;
  }

  // --- Full emission -------------------------------------------------
  // Every session's viewer opened, and with nothing shed every
  // question got its final answer.
  EXPECT_EQ(stats.viewers_opened, workload.sessions);
  EXPECT_EQ(stats.questions_opened,
            workload.sessions * workload.questions_per_session);
  EXPECT_EQ(stats.choices_inferred, stats.questions_opened);
  // The workload overrides every even-indexed question.
  std::size_t overrides_per_session = 0;
  for (std::size_t q = 0; q < workload.questions_per_session; ++q) {
    if (question_overridden(workload, q)) ++overrides_per_session;
  }
  EXPECT_EQ(stats.overrides, workload.sessions * overrides_per_session);
  // Sessions ended long before the capture did: idle eviction, not
  // shutdown flush, retired nearly everyone.
  EXPECT_GT(stats.viewers_evicted_idle, workload.sessions / 2);
  EXPECT_GT(stats.flows_swept, 0u);
}

/// Forwarding source that samples process RSS from the pumping thread
/// once a quarter of the fleet has been read — no cross-thread reads
/// of the generator's internals.
class SamplingSource final : public engine::PacketSource {
 public:
  SamplingSource(engine::PacketSource& inner, std::size_t warmup_at)
      : inner_(inner), warmup_at_(warmup_at) {}

  std::optional<net::Packet> next() override {
    auto packet = inner_.next();
    if (packet) tick(1);
    return packet;
  }
  std::size_t read_batch(engine::PacketBatch& out, std::size_t max) override {
    const std::size_t got = inner_.read_batch(out, max);
    tick(got);
    return got;
  }

  [[nodiscard]] std::size_t fed() const { return fed_; }
  [[nodiscard]] std::size_t warmup_rss() const { return warmup_rss_; }

 private:
  void tick(std::size_t count) {
    fed_ += count;
    if (warmup_rss_ == 0 && fed_ >= warmup_at_) warmup_rss_ = resident_bytes();
  }

  engine::PacketSource& inner_;
  const std::size_t warmup_at_;
  std::size_t fed_ = 0;
  std::size_t warmup_rss_ = 0;
};

TEST(MonitorSoak, ShardedFleetStaysWithinBudgetWithFullEmission) {
  WorkloadConfig workload;
  workload.sessions = soak_sessions();
  workload.concurrency = 256;
  workload.questions_per_session = 4;
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));

  obs::Registry registry;
  FleetConfig config;
  config.shards = soak_shards();
  config.monitor.evidence_window = util::Duration::seconds(5);
  config.monitor.viewer_idle_timeout = util::Duration::seconds(30);
  config.monitor.flow_idle_timeout = util::Duration::seconds(20);
  // The same fleet-WIDE ceiling the single-monitor soak proves: split
  // across shards, shed locally, never violated.
  config.monitor.max_total_bytes = 64u << 20;
  config.monitor.metrics = &registry;

  MonitorFleet fleet(classifier, config);
  SyntheticFleetSource source(workload);
  const std::size_t total_packets = source.packets_total();
  SamplingSource sampled(source, total_packets / 4);
  const std::size_t routed = fleet.consume(sampled);
  const std::size_t final_rss = resident_bytes();
  const FleetStats stats = fleet.finish();

  EXPECT_EQ(routed, total_packets);
  EXPECT_EQ(stats.packets, total_packets);
  EXPECT_EQ(stats.totals.packets, total_packets);
  EXPECT_EQ(stats.packets_unroutable, 0u);
  ASSERT_EQ(stats.shards.size(), config.shards);

  // --- Bounded memory, fleet-wide ------------------------------------
  EXPECT_EQ(stats.totals.ceiling_violations, 0u);
  EXPECT_EQ(stats.totals.viewers_shed, 0u);
  EXPECT_LE(stats.totals.peak_memory_bytes, config.monitor.max_total_bytes);
  if (sampled.warmup_rss() != 0 && final_rss != 0) {
    EXPECT_LE(final_rss,
              sampled.warmup_rss() + sampled.warmup_rss() / 4 + (32u << 20))
        << "RSS grew from " << sampled.warmup_rss() << " to " << final_rss;
  }

  // --- Full emission, via the rollup counters ------------------------
  // The flat "monitor.*" rollups must equal the aggregate stats AND
  // tell the same zero-violation, full-accounting story — that is what
  // an operator's dashboard sees.
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.sharded.at("monitor.mem.ceiling_violations"), 0u);
  EXPECT_EQ(snap.sharded.at("monitor.viewers.shed"), 0u);
  EXPECT_EQ(snap.stable.at("monitor.viewers.opened"), workload.sessions);
  EXPECT_EQ(snap.stable.at("monitor.emit.questions"),
            workload.sessions * workload.questions_per_session);
  EXPECT_EQ(snap.stable.at("monitor.emit.choices"),
            snap.stable.at("monitor.emit.questions"));
  std::size_t overrides_per_session = 0;
  for (std::size_t q = 0; q < workload.questions_per_session; ++q) {
    if (question_overridden(workload, q)) ++overrides_per_session;
  }
  EXPECT_EQ(snap.stable.at("monitor.emit.overrides"),
            workload.sessions * overrides_per_session);
  // The rollups agree with the aggregated FleetStats and with the sum
  // of the per-shard counters (no event lost between the layers).
  EXPECT_EQ(snap.stable.at("monitor.emit.choices"),
            stats.totals.choices_inferred);
  std::uint64_t shard_sum = 0;
  for (std::size_t i = 0; i < config.shards; ++i) {
    shard_sum += snap.sharded.at("monitor.shard[" + std::to_string(i) +
                                 "].emit.choices");
  }
  EXPECT_EQ(shard_sum, stats.totals.choices_inferred);
  EXPECT_GT(stats.totals.viewers_evicted_idle, workload.sessions / 2);
}

}  // namespace
}  // namespace wm::monitor
