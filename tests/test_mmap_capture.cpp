// The memory-mapped capture fast path against the buffered istream
// path: both must yield byte-identical packet sequences on well-formed,
// empty, snaplen-trimmed and large files, agree on where a truncated
// file fails, and drive the engine to identical results and identical
// stable counter exports for every shard count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "wm/core/engine/engine.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/obs/registry.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/mmap_file.hpp"

namespace wm::net {
namespace {

namespace fs = std::filesystem;

Packet make_packet(double seconds, std::size_t size, std::uint8_t fill) {
  return Packet(util::SimTime::from_seconds(seconds), util::Bytes(size, fill));
}

std::vector<Packet> synthetic_packets(std::size_t count, std::size_t size) {
  std::vector<Packet> packets;
  for (std::size_t i = 0; i < count; ++i) {
    packets.push_back(make_packet(0.001 * static_cast<double>(i) + 1.0,
                                  size + (i % 7),
                                  static_cast<std::uint8_t>(i)));
  }
  return packets;
}

void expect_packets_identical(const std::vector<Packet>& a,
                              const std::vector<Packet>& b,
                              const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << context << " packet " << i;
    EXPECT_EQ(a[i].data, b[i].data) << context << " packet " << i;
    EXPECT_EQ(a[i].original_length, b[i].original_length)
        << context << " packet " << i;
  }
}

/// Read `path` through the forced-istream constructor (the oracle).
template <typename Reader>
std::vector<Packet> read_streamed(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  Reader reader(in);
  return reader.read_all();
}

TEST(MmapFile, MapsRegularFilesAndHandlesEmptyOnes) {
  const auto dir = fs::temp_directory_path();
  const auto path = dir / "wm_mmap_probe.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "0123456789";
  }
  auto map = util::MappedFile::open(path);
  ASSERT_TRUE(map.valid());
  ASSERT_EQ(map.size(), 10u);
  EXPECT_EQ(map.view()[0], '0');
  EXPECT_EQ(map.view()[9], '9');

  // A zero-byte file cannot be mmap'd but is a valid empty mapping.
  const auto empty = dir / "wm_mmap_empty.bin";
  { std::ofstream out(empty, std::ios::binary); }
  auto empty_map = util::MappedFile::open(empty);
  EXPECT_TRUE(empty_map.valid());
  EXPECT_EQ(empty_map.size(), 0u);

  // Missing files report invalid instead of throwing.
  EXPECT_FALSE(util::MappedFile::open(dir / "wm_mmap_missing.bin").valid());

  fs::remove(path);
  fs::remove(empty);
}

TEST(MmapCapture, PcapReaderUsesTheMappingAndMatchesIstream) {
  const auto path = fs::temp_directory_path() / "wm_mmap_basic.pcap";
  const auto packets = synthetic_packets(50, 120);
  write_pcap(path, packets);

  PcapReader mapped(path);
  EXPECT_TRUE(mapped.memory_mapped());
  const auto from_map = mapped.read_all();
  expect_packets_identical(from_map, packets, "mmap vs written");
  expect_packets_identical(from_map, read_streamed<PcapReader>(path),
                           "mmap vs istream");
  fs::remove(path);
}

TEST(MmapCapture, PcapngReaderUsesTheMappingAndMatchesIstream) {
  const auto path = fs::temp_directory_path() / "wm_mmap_basic.pcapng";
  const auto packets = synthetic_packets(50, 120);
  write_pcapng(path, packets);

  PcapngReader mapped(path);
  EXPECT_TRUE(mapped.memory_mapped());
  expect_packets_identical(mapped.read_all(), read_streamed<PcapngReader>(path),
                           "mmap vs istream");
  fs::remove(path);
}

TEST(MmapCapture, EmptyCapturesYieldNoPackets) {
  const auto dir = fs::temp_directory_path();
  const auto pcap_path = dir / "wm_mmap_headeronly.pcap";
  { PcapWriter writer(pcap_path); }  // file header, zero records
  PcapReader pcap_reader(pcap_path);
  EXPECT_TRUE(pcap_reader.memory_mapped());
  EXPECT_FALSE(pcap_reader.next().has_value());

  const auto pcapng_path = dir / "wm_mmap_headeronly.pcapng";
  { PcapngWriter writer(pcapng_path); }  // SHB + IDB, zero packets
  PcapngReader pcapng_reader(pcapng_path);
  EXPECT_TRUE(pcapng_reader.memory_mapped());
  EXPECT_FALSE(pcapng_reader.next().has_value());

  // A zero-byte file maps as an empty view; the pcap header check must
  // still fire on it rather than read past the end.
  const auto zero = dir / "wm_mmap_zero.pcap";
  { std::ofstream out(zero, std::ios::binary); }
  EXPECT_THROW(PcapReader{zero}, std::runtime_error);

  fs::remove(pcap_path);
  fs::remove(pcapng_path);
  fs::remove(zero);
}

TEST(MmapCapture, TruncatedFinalRecordDeliversPrefixThenThrows) {
  const auto dir = fs::temp_directory_path();
  const auto whole = dir / "wm_mmap_whole.pcap";
  const auto packets = synthetic_packets(10, 200);
  write_pcap(whole, packets);

  for (const std::size_t chop : {std::size_t{7}, std::size_t{205}}) {
    // 7 bytes: mid-payload. 205 bytes: into the final record header.
    const auto truncated = dir / "wm_mmap_truncated.pcap";
    {
      std::ifstream in(whole, std::ios::binary);
      std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
      bytes.resize(bytes.size() - chop);
      std::ofstream out(truncated, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    PcapReader reader(truncated);
    EXPECT_TRUE(reader.memory_mapped());
    std::size_t delivered = 0;
    EXPECT_THROW(
        {
          while (reader.next()) ++delivered;
        },
        std::runtime_error)
        << "chop=" << chop;
    EXPECT_EQ(delivered, packets.size() - 1) << "chop=" << chop;
    fs::remove(truncated);
  }
  fs::remove(whole);
}

TEST(MmapCapture, SnaplenTrimmedRecordsKeepOriginalLength) {
  const auto path = fs::temp_directory_path() / "wm_mmap_snaplen.pcap";
  std::vector<Packet> packets;
  for (int i = 0; i < 20; ++i) packets.push_back(make_packet(1.0 + i, 300, 0xcd));
  {
    PcapWriter writer(path, /*nanosecond_resolution=*/true, /*snaplen=*/96);
    for (const Packet& packet : packets) writer.write(packet);
  }
  PcapReader mapped(path);
  EXPECT_TRUE(mapped.memory_mapped());
  const auto loaded = mapped.read_all();
  ASSERT_EQ(loaded.size(), packets.size());
  for (const Packet& packet : loaded) {
    EXPECT_EQ(packet.data.size(), 96u);
    EXPECT_EQ(packet.original_length, 300u);
  }
  expect_packets_identical(loaded, read_streamed<PcapReader>(path),
                           "snaplen mmap vs istream");
  fs::remove(path);
}

TEST(MmapCapture, FilesLargerThanOneSlabRoundTripBothFormats) {
  // Well past the 64 KiB BufferPool slab / any staging buffer size, so
  // every internal buffer must have been recycled many times over.
  const auto dir = fs::temp_directory_path();
  const auto packets = synthetic_packets(400, 1400);  // ~560 KiB payload

  const auto pcap_path = dir / "wm_mmap_large.pcap";
  write_pcap(pcap_path, packets);
  ASSERT_GT(fs::file_size(pcap_path), 5u * 64 * 1024);
  PcapReader pcap_mapped(pcap_path);
  expect_packets_identical(pcap_mapped.read_all(),
                           read_streamed<PcapReader>(pcap_path),
                           "large pcap mmap vs istream");

  const auto pcapng_path = dir / "wm_mmap_large.pcapng";
  write_pcapng(pcapng_path, packets);
  PcapngReader pcapng_mapped(pcapng_path);
  expect_packets_identical(pcapng_mapped.read_all(),
                           read_streamed<PcapngReader>(pcapng_path),
                           "large pcapng mmap vs istream");

  fs::remove(pcap_path);
  fs::remove(pcapng_path);
}

TEST(MmapCapture, NextViewBorrowsStableBytesUntilTheNextRead) {
  const auto path = fs::temp_directory_path() / "wm_mmap_views.pcap";
  const auto packets = synthetic_packets(5, 64);
  write_pcap(path, packets);
  PcapReader reader(path);
  ASSERT_TRUE(reader.memory_mapped());
  std::size_t index = 0;
  while (const auto view = reader.next_view()) {
    ASSERT_LT(index, packets.size());
    EXPECT_EQ(view->timestamp, packets[index].timestamp);
    ASSERT_EQ(view->data.size(), packets[index].data.size());
    EXPECT_TRUE(std::equal(view->data.begin(), view->data.end(),
                           packets[index].data.begin()));
    EXPECT_EQ(view->original_length, packets[index].data.size());
    // assign_to must reuse the target's capacity.
    Packet target;
    target.data.reserve(256);
    const auto* buffer = target.data.data();
    view->assign_to(target);
    EXPECT_EQ(target.data.data(), buffer);
    ++index;
  }
  EXPECT_EQ(index, packets.size());
  fs::remove(path);
}

}  // namespace
}  // namespace wm::net

namespace wm::core {
namespace {

namespace fs = std::filesystem;
using story::Choice;

std::vector<Choice> alternating(std::size_t n, bool start_non_default) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    const bool non_default = (i % 2 == 0) == start_non_default;
    out.push_back(non_default ? Choice::kNonDefault : Choice::kDefault);
  }
  return out;
}

AttackPipeline calibrated_pipeline(const story::StoryGraph& graph) {
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 8200 + s;
    auto session = sim::simulate_session(graph, alternating(13, true), config);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

void expect_sessions_identical(const InferredSession& a,
                               const InferredSession& b,
                               const std::string& context) {
  ASSERT_EQ(a.questions.size(), b.questions.size()) << context;
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].index, b.questions[i].index) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].question_time, b.questions[i].question_time)
        << context << " Q" << i;
    EXPECT_EQ(a.questions[i].choice, b.questions[i].choice) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].override_time, b.questions[i].override_time)
        << context << " Q" << i;
  }
  EXPECT_EQ(a.type1_records, b.type1_records) << context;
  EXPECT_EQ(a.type2_records, b.type2_records) << context;
  EXPECT_EQ(a.other_records, b.other_records) << context;
}

TEST(MmapDifferential, EngineIdenticalAcrossReadPathsAndShardCounts) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  sim::SessionConfig config;
  config.seed = 8300;
  const auto session = sim::simulate_session(graph, alternating(13, true), config);
  const auto path = fs::temp_directory_path() / "wm_mmap_differential.pcap";
  net::write_pcap(path, session.capture.packets);

  // Reference: forced-istream, inline (batch-equivalent) run.
  std::string reference_stable;
  InferReport reference;
  {
    obs::Registry registry;
    engine::CaptureOptions capture_options;
    capture_options.metrics = &registry;
    capture_options.allow_mmap = false;
    auto source = engine::open_capture(path, capture_options);
    ASSERT_TRUE(source.ok()) << source.error().to_string();
    InferOptions options;
    options.shards = 0;
    options.per_client = true;
    options.metrics = &registry;
    reference = pipeline.infer(**source, options);
    reference_stable = registry.snapshot().stable_json();
    ASSERT_FALSE(reference_stable.empty());
  }

  for (const bool allow_mmap : {false, true}) {
    for (const std::size_t shards :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{8}}) {
      const std::string context = std::string(allow_mmap ? "mmap" : "istream") +
                                  " shards=" + std::to_string(shards);
      obs::Registry registry;
      engine::CaptureOptions capture_options;
      capture_options.metrics = &registry;
      capture_options.allow_mmap = allow_mmap;
      auto source = engine::open_capture(path, capture_options);
      ASSERT_TRUE(source.ok()) << context << ": " << source.error().to_string();

      InferOptions options;
      options.shards = shards;
      options.per_client = true;
      options.metrics = &registry;
      const InferReport report = pipeline.infer(**source, options);

      expect_sessions_identical(report.combined, reference.combined, context);
      ASSERT_EQ(report.per_client.size(), reference.per_client.size()) << context;
      for (const auto& [client, inferred] : reference.per_client) {
        ASSERT_TRUE(report.per_client.count(client)) << context;
        expect_sessions_identical(report.per_client.at(client), inferred,
                                  context + " client " + client);
      }
      // The stable counter export is byte-identical no matter how the
      // bytes reached the engine or how many workers chewed them.
      EXPECT_EQ(registry.snapshot().stable_json(), reference_stable) << context;
    }
  }
  fs::remove(path);
}

TEST(MmapDifferential, CaptureSourceReportsMmapEngagement) {
  const auto path = fs::temp_directory_path() / "wm_mmap_flagged.pcap";
  std::vector<net::Packet> packets;
  packets.emplace_back(util::SimTime::from_seconds(1.0), util::Bytes(60, 0x42));
  net::write_pcap(path, packets);

  {
    obs::Registry registry;
    engine::CaptureOptions options;
    options.metrics = &registry;
    auto source = engine::open_capture(path, options);
    ASSERT_TRUE(source.ok());
    const auto snap = registry.snapshot();
    EXPECT_TRUE(snap.sharded.count("source.mmap"));
    EXPECT_FALSE(snap.stable.count("source.mmap"));  // never in the contract
  }
  {
    obs::Registry registry;
    engine::CaptureOptions options;
    options.metrics = &registry;
    options.allow_mmap = false;
    auto source = engine::open_capture(path, options);
    ASSERT_TRUE(source.ok());
    EXPECT_FALSE(registry.snapshot().sharded.count("source.mmap"));
  }
  fs::remove(path);
}

}  // namespace
}  // namespace wm::core
