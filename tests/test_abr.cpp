// Adaptive bitrate: chunk sizes churn, the side-channel does not.
#include <gtest/gtest.h>

#include <set>

#include "wm/core/pipeline.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::sim {
namespace {

using story::Choice;

AppTrace abr_trace(std::uint64_t seed) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  StreamingConfig config;
  config.adaptive_bitrate = true;
  util::Rng rng(seed);
  return simulate_app_trace(graph, std::vector<Choice>(13, Choice::kDefault),
                            profile, config, rng);
}

TEST(Abr, ChunkSizesSpanTheLadder) {
  const AppTrace trace = abr_trace(41);
  std::set<std::size_t> chunk_sizes;
  for (const AppEvent& event : trace.events) {
    if (!event.from_client) chunk_sizes.insert(event.plaintext_size);
  }
  // The random walk visits more than one rung of the 4-rung ladder.
  EXPECT_GE(chunk_sizes.size(), 2u);
  StreamingConfig config;
  for (std::size_t size : chunk_sizes) {
    bool on_ladder = false;
    for (std::uint32_t kbps : config.bitrate_ladder_kbps) {
      const auto expected = static_cast<std::size_t>(
          static_cast<double>(kbps) * 1000.0 / 8.0 * config.chunk_seconds);
      on_ladder |= size == expected;
    }
    EXPECT_TRUE(on_ladder) << "chunk size " << size << " not on the ladder";
  }
}

TEST(Abr, FixedBitrateWhenDisabled) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  StreamingConfig config;  // adaptive_bitrate = false
  util::Rng rng(42);
  const AppTrace trace = simulate_app_trace(
      graph, std::vector<Choice>(13, Choice::kDefault), profile, config, rng);
  std::set<std::size_t> chunk_sizes;
  for (const AppEvent& event : trace.events) {
    if (!event.from_client) chunk_sizes.insert(event.plaintext_size);
  }
  EXPECT_EQ(chunk_sizes.size(), 1u);
}

TEST(Abr, ClientSideChannelUntouched) {
  // The JSON upload sizes are identical with and without ABR at the
  // same seed: quality switching only consumes chunk-size draws.
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  std::vector<Choice> choices(13, Choice::kNonDefault);

  auto json_sizes = [&](bool abr) {
    StreamingConfig config;
    config.adaptive_bitrate = abr;
    util::Rng rng(43);
    const AppTrace trace =
        simulate_app_trace(graph, choices, profile, config, rng);
    std::vector<std::size_t> out;
    for (const AppEvent& event : trace.events) {
      if (event.from_client &&
          (event.client_kind == ClientMessageKind::kType1Json ||
           event.client_kind == ClientMessageKind::kType2Json)) {
        out.push_back(event.plaintext_size);
      }
    }
    return out;
  };
  // Same count; every size inside the profile bands either way.
  const auto with_abr = json_sizes(true);
  const auto without = json_sizes(false);
  EXPECT_EQ(with_abr.size(), without.size());
  for (std::size_t size : with_abr) {
    const bool in_type1 = size >= profile.type1_plaintext.base &&
                          size <= profile.type1_plaintext.max();
    const bool in_type2 = size >= profile.type2_plaintext.base &&
                          size <= profile.type2_plaintext.max();
    EXPECT_TRUE(in_type1 || in_type2);
  }
}

TEST(Abr, AttackUnaffectedEndToEnd) {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<Choice> alternating;
  for (int i = 0; i < 13; ++i) {
    alternating.push_back(i % 2 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }

  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 5; ++s) {
    SessionConfig config;
    config.seed = 9900 + s;
    config.streaming.adaptive_bitrate = true;
    auto session = simulate_session(graph, alternating, config);
    calibration.push_back(core::CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  core::AttackPipeline attack("interval");
  attack.calibrate(calibration);

  SessionConfig victim_config;
  victim_config.seed = 9950;
  victim_config.streaming.adaptive_bitrate = true;
  const auto victim = simulate_session(graph, alternating, victim_config);
  engine::VectorSource source(&victim.capture.packets);
  const auto score =
      core::score_session(victim.truth, attack.infer(source).combined);
  EXPECT_GE(score.choices_correct + 1, score.questions_truth);
  EXPECT_TRUE(score.question_count_match);
}

}  // namespace
}  // namespace wm::sim
