// Slab-decoder differential suite (PR 10).
//
// The hot path decodes packets column-wise (decode_slab) while feed()
// keeps the full scalar parser chain (decode_packet) as the oracle.
// These tests pin the three-way contract — decode_packet ==
// decode_lens == decode_slab — on synthetic traffic, on systematically
// malformed/truncated frames, and on the fuzz corpus seeds; then pin
// the engine end to end: slab mode must reproduce the scalar-oracle
// run byte-for-byte (decode output and stable counters) across shard
// counts and capture impairments. Finally, the arena/pool-backed flow
// state must preserve idle-sweep behaviour and hand out clean recycled
// state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "wm/core/engine/engine.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/net/packet.hpp"
#include "wm/net/packet_builder.hpp"
#include "wm/obs/registry.hpp"
#include "wm/sim/impairments.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/tls/record_stream.hpp"
#include "wm/tls/session.hpp"
#include "wm/util/rng.hpp"

namespace wm {
namespace {

using net::LensStatus;
using net::PacketLens;
using story::Choice;
using util::Duration;
using util::SimTime;

// --- decoder three-way equivalence ------------------------------------

std::uint8_t flags_byte(const net::TcpHeader& tcp) {
  return static_cast<std::uint8_t>(
      (tcp.fin ? 0x01 : 0) | (tcp.syn ? 0x02 : 0) | (tcp.rst ? 0x04 : 0) |
      (tcp.psh ? 0x08 : 0) | (tcp.ack ? 0x10 : 0) | (tcp.urg ? 0x20 : 0));
}

/// Pin one packet's lens against the scalar parser chain.
void expect_lens_matches_oracle(const net::Packet& packet,
                                const PacketLens& lens,
                                const std::string& context) {
  const auto decoded = net::decode_packet(packet);
  if (!decoded.has_value()) {
    EXPECT_EQ(lens.status, LensStatus::kUndecodable) << context;
    return;
  }
  if (!decoded->has_tcp()) {
    EXPECT_EQ(lens.status, LensStatus::kNonTcp) << context;
    return;
  }
  ASSERT_EQ(lens.status, LensStatus::kTcp) << context;
  const net::TcpHeader& tcp = decoded->tcp();
  EXPECT_EQ(lens.source_port, tcp.source_port) << context;
  EXPECT_EQ(lens.destination_port, tcp.destination_port) << context;
  EXPECT_EQ(lens.sequence, tcp.sequence) << context;
  EXPECT_EQ(lens.tcp_flags, flags_byte(tcp)) << context;
  EXPECT_EQ(lens.truncated_bytes, decoded->transport_payload_missing) << context;
  ASSERT_LE(lens.payload_offset + lens.payload_length, packet.data.size())
      << context;
  const util::BytesView payload =
      util::BytesView(packet.data).subspan(lens.payload_offset,
                                           lens.payload_length);
  ASSERT_EQ(payload.size(), decoded->transport_payload.size()) << context;
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         decoded->transport_payload.begin()))
      << context;
  // Addresses: the lens stores wire offsets; the source address starts
  // at address_offset, the destination follows (4 bytes v4, 16 v6).
  if (lens.is_v6) {
    ASSERT_TRUE(decoded->has_ipv6()) << context;
    EXPECT_EQ(std::memcmp(packet.data.data() + lens.address_offset,
                          decoded->ipv6().source.octets().data(), 16),
              0)
        << context;
    EXPECT_EQ(std::memcmp(packet.data.data() + lens.address_offset + 16,
                          decoded->ipv6().destination.octets().data(), 16),
              0)
        << context;
  } else {
    ASSERT_TRUE(decoded->has_ipv4()) << context;
    const std::uint8_t* a = packet.data.data() + lens.address_offset;
    const auto wire = [](const std::uint8_t* p) {
      return (static_cast<std::uint32_t>(p[0]) << 24) |
             (static_cast<std::uint32_t>(p[1]) << 16) |
             (static_cast<std::uint32_t>(p[2]) << 8) |
             static_cast<std::uint32_t>(p[3]);
    };
    EXPECT_EQ(wire(a), decoded->ipv4().source.value()) << context;
    EXPECT_EQ(wire(a + 4), decoded->ipv4().destination.value()) << context;
  }
}

/// decode_lens and decode_slab must agree field-for-field.
void expect_lens_equals_slab(const PacketLens& lens, const PacketLens& slab,
                             const std::string& context) {
  EXPECT_EQ(lens.status, slab.status) << context;
  if (lens.status != LensStatus::kTcp) return;
  EXPECT_EQ(lens.is_v6, slab.is_v6) << context;
  EXPECT_EQ(lens.tcp_flags, slab.tcp_flags) << context;
  EXPECT_EQ(lens.source_port, slab.source_port) << context;
  EXPECT_EQ(lens.destination_port, slab.destination_port) << context;
  EXPECT_EQ(lens.sequence, slab.sequence) << context;
  EXPECT_EQ(lens.address_offset, slab.address_offset) << context;
  EXPECT_EQ(lens.payload_offset, slab.payload_offset) << context;
  EXPECT_EQ(lens.payload_length, slab.payload_length) << context;
  EXPECT_EQ(lens.truncated_bytes, slab.truncated_bytes) << context;
}

void expect_three_way(const std::vector<net::Packet>& packets,
                      const std::string& label) {
  net::DecodedSlab slab;
  for (std::size_t offset = 0; offset < packets.size();
       offset += net::DecodedSlab::kCapacity) {
    const std::size_t count = std::min<std::size_t>(
        net::DecodedSlab::kCapacity, packets.size() - offset);
    net::decode_slab(packets.data() + offset, count, slab);
    ASSERT_EQ(slab.count, count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::string context =
          label + " packet " + std::to_string(offset + i);
      PacketLens lens;
      net::decode_lens(packets[offset + i], lens);
      expect_lens_matches_oracle(packets[offset + i], lens, context);
      expect_lens_equals_slab(lens, slab.lens[i], context);
    }
  }
}

std::vector<Choice> alternating(std::size_t n) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(i % 2 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }
  return out;
}

std::vector<net::Packet> session_capture(std::uint64_t seed) {
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::SessionConfig config;
  config.seed = seed;
  return sim::simulate_session(graph, alternating(13), config).capture.packets;
}

TEST(SlabDecode, MatchesOracleOnSimulatedTraffic) {
  expect_three_way(session_capture(8801), "simulated");
}

TEST(SlabDecode, MatchesOracleOnTruncatedCaptures) {
  const std::vector<net::Packet> base = session_capture(8802);
  for (const std::size_t snaplen : {54u, 60u, 96u, 200u, 1000u}) {
    expect_three_way(sim::truncate_snaplen(base, snaplen),
                     "snaplen" + std::to_string(snaplen));
  }
}

TEST(SlabDecode, MatchesOracleOnSystematicallyMangledFrames) {
  const std::vector<net::Packet> base = session_capture(8803);
  // Take a handful of representative frames and mangle them every way
  // the parser branches on: every truncation point, every corrupted
  // leading byte, and both with original_length kept (so the slab's
  // allow-truncated path engages) and shrunk.
  std::vector<net::Packet> mangled;
  for (std::size_t pick = 0; pick < base.size();
       pick += std::max<std::size_t>(1, base.size() / 9)) {
    const net::Packet& source = base[pick];
    for (std::size_t cut = 0; cut <= std::min<std::size_t>(source.data.size(), 96);
         ++cut) {
      net::Packet shorter = source;
      shorter.data.resize(cut);
      mangled.push_back(shorter);           // original_length says truncated
      shorter.original_length = cut;        // or the frame was just short
      mangled.push_back(std::move(shorter));
    }
    for (std::size_t byte = 0; byte < std::min<std::size_t>(source.data.size(), 60);
         ++byte) {
      net::Packet corrupt = source;
      corrupt.data[byte] ^= 0xff;
      mangled.push_back(std::move(corrupt));
    }
  }
  expect_three_way(mangled, "mangled");
}

TEST(SlabDecode, MatchesOracleOnRandomGarbage) {
  util::Rng rng(8804);
  std::vector<net::Packet> garbage;
  for (int i = 0; i < 512; ++i) {
    const std::size_t size =
        static_cast<std::size_t>(rng.uniform_int(0, 160));
    net::Packet packet;
    packet.timestamp = SimTime::from_seconds(i);
    packet.data.resize(size);
    for (std::uint8_t& byte : packet.data) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    packet.original_length = size + (i % 3 == 0 ? 40 : 0);
    garbage.push_back(std::move(packet));
  }
  expect_three_way(garbage, "garbage");
}

TEST(SlabDecode, MatchesOracleOnFuzzCorpusSeeds) {
  // Every corpus seed byte-blob, fed to the decoders as a raw frame:
  // adversarial inputs collected by the fuzz harnesses (malformed
  // headers, truncations, mid-structure splits).
  std::vector<net::Packet> frames;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(WM_FUZZ_CORPUS_DIR)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    util::Bytes bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    net::Packet packet;
    packet.original_length = bytes.size();
    packet.data = std::move(bytes);
    frames.push_back(std::move(packet));
  }
  ASSERT_GT(frames.size(), 10u);
  expect_three_way(frames, "corpus");
}

TEST(SlabDecode, SlabCapsAtCapacity) {
  const std::vector<net::Packet> base = session_capture(8805);
  ASSERT_GT(base.size(), net::DecodedSlab::kCapacity);
  net::DecodedSlab slab;
  net::decode_slab(base.data(), base.size(), slab);
  EXPECT_EQ(slab.count, net::DecodedSlab::kCapacity);
}

// --- engine: slab mode vs scalar oracle -------------------------------

std::vector<net::Packet> merged_capture(std::size_t viewers,
                                        std::uint64_t seed) {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<net::Packet> merged;
  for (std::size_t v = 0; v < viewers; ++v) {
    sim::SessionConfig config;
    config.seed = seed + v;
    config.packetize.client_ip =
        net::Ipv4Address(10, 0, 9, static_cast<std::uint8_t>(10 + v));
    config.packetize.cdn_client_port = static_cast<std::uint16_t>(55000 + 2 * v);
    config.packetize.api_client_port = static_cast<std::uint16_t>(55001 + 2 * v);
    auto session = sim::simulate_session(graph, alternating(13), config);
    const Duration stagger = Duration::millis(1100) * static_cast<int>(v);
    for (net::Packet& packet : session.capture.packets) {
      packet.timestamp += stagger;
      merged.push_back(std::move(packet));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

TEST(SlabDecode, EngineSlabMatchesScalarAcrossShardsAndImpairments) {
  const story::StoryGraph graph = story::make_bandersnatch();
  core::AttackPipeline pipeline("interval");
  {
    sim::SessionConfig config;
    config.seed = 8901;
    auto session = sim::simulate_session(graph, alternating(13), config);
    pipeline.calibrate({core::CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)}});
  }

  const std::vector<net::Packet> base = merged_capture(2, 8902);
  struct Scenario {
    std::string name;
    std::vector<net::Packet> packets;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"pristine", base});
  {
    util::Rng rng(8903);
    scenarios.push_back({"drop2pct", sim::drop_packets(base, 0.02, rng)});
  }
  scenarios.push_back({"snaplen200", sim::truncate_snaplen(base, 200)});
  {
    util::Rng rng(8904);
    scenarios.push_back({"jitter2ms", sim::jitter_order(base, 0.002, rng)});
  }
  {
    util::Rng rng(8905);
    scenarios.push_back({"loss1pct", sim::drop_segments(base, 0.01, rng)});
  }

  const auto run = [&](const Scenario& scenario, std::size_t shards,
                       bool slab, obs::Registry* registry) {
    engine::EngineConfig config;
    config.shards = shards;
    config.slab_decode = slab;
    config.flow_idle_timeout = Duration::seconds(30);
    config.metrics = registry;
    engine::VectorSource source(&scenario.packets);
    return engine::analyze(pipeline.classifier(), source, config);
  };

  for (const Scenario& scenario : scenarios) {
    // Pairwise at every shard count: the scalar-oracle run shares the
    // engine config (same sharding, same eviction cadence) and differs
    // ONLY in the decoder, so any divergence indicts the slab path.
    for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                     std::size_t{2}, std::size_t{4},
                                     std::size_t{8}}) {
      const std::string context =
          scenario.name + " shards=" + std::to_string(shards);
      obs::Registry scalar_registry;
      const engine::EngineResult scalar =
          run(scenario, shards, /*slab=*/false, &scalar_registry);
      const std::string scalar_stable =
          scalar_registry.snapshot().stable_json();
      ASSERT_FALSE(scalar_stable.empty()) << context;
      obs::Registry registry;
      const engine::EngineResult slab =
          run(scenario, shards, /*slab=*/true, &registry);

      // Identical analysis output...
      ASSERT_EQ(slab.combined.questions.size(),
                scalar.combined.questions.size())
          << context;
      for (std::size_t i = 0; i < slab.combined.questions.size(); ++i) {
        EXPECT_EQ(slab.combined.questions[i].index,
                  scalar.combined.questions[i].index)
            << context << " Q" << i;
        EXPECT_EQ(slab.combined.questions[i].choice,
                  scalar.combined.questions[i].choice)
            << context << " Q" << i;
        EXPECT_EQ(slab.combined.questions[i].question_time,
                  scalar.combined.questions[i].question_time)
            << context << " Q" << i;
        EXPECT_DOUBLE_EQ(slab.combined.questions[i].confidence,
                         scalar.combined.questions[i].confidence)
            << context << " Q" << i;
      }
      // ...identical flow/record/loss accounting...
      EXPECT_EQ(slab.stats.packets_in, scalar.stats.packets_in) << context;
      EXPECT_EQ(slab.stats.bytes_in, scalar.stats.bytes_in) << context;
      EXPECT_EQ(slab.stats.packets_undecodable,
                scalar.stats.packets_undecodable)
          << context;
      EXPECT_EQ(slab.stats.records, scalar.stats.records) << context;
      EXPECT_EQ(slab.stats.client_records, scalar.stats.client_records)
          << context;
      EXPECT_EQ(slab.stats.flows_opened, scalar.stats.flows_opened) << context;
      EXPECT_EQ(slab.stats.flows_evicted, scalar.stats.flows_evicted)
          << context;
      EXPECT_EQ(slab.stats.flows_completed, scalar.stats.flows_completed)
          << context;
      EXPECT_EQ(slab.stats.gaps, scalar.stats.gaps) << context;
      EXPECT_EQ(slab.stats.gap_bytes, scalar.stats.gap_bytes) << context;
      EXPECT_EQ(slab.stats.tls_resyncs, scalar.stats.tls_resyncs) << context;
      EXPECT_EQ(slab.stats.tls_skipped_bytes, scalar.stats.tls_skipped_bytes)
          << context;
      // ...and byte-identical stable counters.
      EXPECT_EQ(registry.snapshot().stable_json(), scalar_stable) << context;
    }
  }
}

// --- arena-backed flow state: eviction and recycling ------------------

tls::TlsSessionConfig tls_config() {
  tls::TlsSessionConfig config;
  config.suite = tls::CipherSuite::kTlsEcdheRsaAes256GcmSha384;
  config.sni = "occ-0-100-100.1.nflxvideo.net";
  return config;
}

/// One TLS-over-TCP connection with `uploads` client app records,
/// starting at `start` from client port `port`.
std::vector<net::Packet> tls_connection(std::uint16_t port, double start,
                                        std::vector<std::size_t> uploads) {
  tls::TlsSession session(tls_config(), util::Rng(port));
  net::TcpEndpointConfig client;
  client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
  client.ip = net::Ipv4Address(10, 0, 0, 2);
  client.port = port;
  net::TcpEndpointConfig server = client;
  server.mac = *net::MacAddress::parse("02:00:00:00:00:02");
  server.ip = net::Ipv4Address(198, 45, 48, 10);
  server.port = 443;
  net::TcpConnectionBuilder conn(client, server);
  SimTime t = SimTime::from_seconds(start);
  conn.handshake(t, Duration::millis(20));
  t += Duration::millis(30);
  conn.send(net::FlowDirection::kClientToServer, t,
            serialize_records(session.client_hello_flight()));
  t += Duration::millis(20);
  conn.send(net::FlowDirection::kServerToClient, t,
            serialize_records(session.server_hello_flight()));
  t += Duration::millis(20);
  for (const std::size_t size : uploads) {
    conn.send(net::FlowDirection::kClientToServer, t,
              serialize_records(session.seal_application_data(size)));
    t += Duration::millis(15);
  }
  return conn.take_packets();
}

TEST(SlabDecode, IdleSweepEvictsOnlyIdleFlowsFromArenaState) {
  tls::RecordStreamExtractor::Config config;
  config.idle_timeout = Duration::seconds(5);
  tls::RecordStreamExtractor extractor(config);

  // Flow A finishes by ~0.2s; flow B starts at 4.0s and will receive
  // more data after the sweep, so the sweep must leave it intact.
  for (const net::Packet& packet : tls_connection(51001, 0.0, {2188})) {
    extractor.feed(packet);
  }

  tls::TlsSession session(tls_config(), util::Rng(51002));
  net::TcpEndpointConfig client;
  client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
  client.ip = net::Ipv4Address(10, 0, 0, 2);
  client.port = 51002;
  net::TcpEndpointConfig server = client;
  server.mac = *net::MacAddress::parse("02:00:00:00:00:02");
  server.ip = net::Ipv4Address(198, 45, 48, 10);
  server.port = 443;
  net::TcpConnectionBuilder conn(client, server);
  std::vector<tls::StreamEvent> survivor_events;
  const auto feed_pending = [&] {
    for (const net::Packet& packet : conn.take_packets()) {
      for (tls::StreamEvent& event : extractor.feed(packet)) {
        survivor_events.push_back(std::move(event));
      }
    }
  };
  conn.handshake(SimTime::from_seconds(4.0), Duration::millis(20));
  conn.send(net::FlowDirection::kClientToServer, SimTime::from_seconds(4.10),
            serialize_records(session.client_hello_flight()));
  conn.send(net::FlowDirection::kServerToClient, SimTime::from_seconds(4.15),
            serialize_records(session.server_hello_flight()));
  conn.send(net::FlowDirection::kClientToServer, SimTime::from_seconds(4.20),
            serialize_records(session.seal_application_data(2188)));
  feed_pending();
  ASSERT_EQ(extractor.active_flows(), 2u);

  // Timer-driven sweep at t=9: flow A (idle ~8.8s) leaves, flow B
  // (idle 4.8s, under the 5s timeout) stays.
  EXPECT_EQ(extractor.sweep_idle(SimTime::from_seconds(9.0)), 1u);
  EXPECT_EQ(extractor.flows_evicted(), 1u);
  EXPECT_EQ(extractor.active_flows(), 1u);

  // The survivor's parser state was untouched: a record sent after the
  // sweep still parses in sequence.
  conn.send(net::FlowDirection::kClientToServer, SimTime::from_seconds(9.5),
            serialize_records(session.seal_application_data(2970)));
  feed_pending();
  // The survivor's parser state was untouched by the sweep: its client
  // application records still parse out.
  std::size_t client_app = 0;
  for (const tls::StreamEvent& event : survivor_events) {
    if (event.kind == tls::StreamEvent::Kind::kRecord &&
        event.event.is_client_application_data()) {
      ++client_app;
    }
  }
  EXPECT_EQ(client_app, 2u);
  EXPECT_EQ(extractor.peak_active_flows(), 2u);
  // Arena stats are live and accounted (flow nodes allocated/released).
  EXPECT_GT(extractor.arena().stats().allocations, 0u);
}

TEST(SlabDecode, RecycledFlowStateStartsClean) {
  tls::RecordStreamExtractor::Config config;
  config.idle_timeout = Duration::seconds(5);
  tls::RecordStreamExtractor extractor(config);

  // Flow 1 feeds TLS garbage: parser desyncs, skip counters grow.
  {
    net::TcpEndpointConfig client;
    client.mac = *net::MacAddress::parse("02:00:00:00:00:01");
    client.ip = net::Ipv4Address(10, 0, 0, 2);
    client.port = 52001;
    net::TcpEndpointConfig server = client;
    server.mac = *net::MacAddress::parse("02:00:00:00:00:02");
    server.ip = net::Ipv4Address(198, 45, 48, 10);
    server.port = 443;
    net::TcpConnectionBuilder conn(client, server);
    conn.handshake(SimTime::from_seconds(0), Duration::millis(20));
    conn.send(net::FlowDirection::kClientToServer, SimTime::from_seconds(0.1),
              util::Bytes(4096, 0x00));  // no plausible TLS header anywhere
    for (const net::Packet& packet : conn.take_packets()) {
      extractor.feed(packet);
    }
  }
  EXPECT_GT(extractor.tls_bytes_skipped(), 0u);
  EXPECT_EQ(extractor.sweep_idle(SimTime::from_seconds(10.0)), 1u);

  // Flow 2 reuses the pooled per-flow state; nothing of flow 1's
  // desync may bleed into it.
  std::vector<tls::StreamEvent> events;
  for (const net::Packet& packet : tls_connection(52002, 11.0, {2188})) {
    for (tls::StreamEvent& event : extractor.feed(packet)) {
      events.push_back(std::move(event));
    }
  }
  std::size_t client_app = 0;
  for (const tls::StreamEvent& event : events) {
    ASSERT_EQ(event.kind, tls::StreamEvent::Kind::kRecord);
    if (event.event.is_client_application_data()) {
      ++client_app;
      EXPECT_FALSE(event.event.after_gap);
    }
  }
  EXPECT_EQ(client_app, 1u);
  const auto streams = extractor.finish();
  for (const tls::FlowRecordStream& stream : streams) {
    if (stream.flow.client.port != 52002) continue;
    EXPECT_EQ(stream.gaps, 0u);
    EXPECT_EQ(stream.tls_resyncs, 0u);
    EXPECT_EQ(stream.tls_bytes_skipped, 0u);
    EXPECT_FALSE(stream.client_desynchronized);
  }
}

TEST(SlabDecode, FlushRetiresFlowsInFlowKeyOrder) {
  // Three live flows inserted in descending client-port order; flush()
  // must still deliver their events grouped in ascending FlowKey order
  // — the shard-invariant retirement order the differential suite
  // relies on, preserved across the arena/index rebuild.
  tls::RecordStreamExtractor extractor;
  for (const std::uint16_t port : {53005, 53003, 53001}) {
    std::vector<net::Packet> packets =
        tls_connection(port, 0.0 + (53005 - port), {2188, 2970});
    // Punch a reassembly hole: drop the second-to-last client payload
    // segment, so the final segment's bytes stay buffered behind the
    // hole until flush() declares the gap — every flow still owes
    // events at flush time.
    std::vector<std::size_t> client_payload;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const auto decoded = net::decode_packet(packets[i]);
      if (decoded.has_value() && decoded->has_tcp() &&
          decoded->tcp().destination_port == 443 &&
          !decoded->transport_payload.empty()) {
        client_payload.push_back(i);
      }
    }
    ASSERT_GE(client_payload.size(), 2u);
    packets.erase(packets.begin() +
                  static_cast<std::ptrdiff_t>(
                      client_payload[client_payload.size() - 2]));
    for (const net::Packet& packet : packets) extractor.feed(packet);
  }
  ASSERT_EQ(extractor.active_flows(), 3u);
  const std::vector<tls::StreamEvent> events = extractor.flush();
  ASSERT_FALSE(events.empty());
  std::vector<std::uint16_t> retirement_order;
  for (const tls::StreamEvent& event : events) {
    const std::uint16_t port = event.flow.client.port;
    if (retirement_order.empty() || retirement_order.back() != port) {
      retirement_order.push_back(port);
    }
  }
  EXPECT_EQ(retirement_order,
            (std::vector<std::uint16_t>{53001, 53003, 53005}));
}

}  // namespace
}  // namespace wm
