// Unit tests for the wm::lint rule engine (tools/wm_lint). Probe
// sources live in raw string literals; the linter's own lexical
// pre-pass blanks string literals before matching, which is also why
// this file survives the repo-wide `lint_repo` scan despite spelling
// out every banned construct below.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using wm::lint::Diagnostic;
using wm::lint::LintResult;
using wm::lint::Options;
using wm::lint::SourceFile;

LintResult lint_one(std::string path, std::string content,
                    Options options = {}) {
  return wm::lint::run({SourceFile{std::move(path), std::move(content)}},
                       options);
}

LintResult lint_files(std::vector<SourceFile> files) {
  return wm::lint::run(files, Options{});
}

std::vector<std::string> rules_of(const LintResult& result) {
  std::vector<std::string> rules;
  rules.reserve(result.diagnostics.size());
  for (const Diagnostic& d : result.diagnostics) rules.push_back(d.rule);
  return rules;
}

bool has_rule(const LintResult& result, const std::string& rule) {
  const auto rules = rules_of(result);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// --- rule: cast ------------------------------------------------------

TEST(LintCast, FlagsReinterpretCastOutsideBlessedFile) {
  const auto result = lint_one("src/net/foo.cpp", R"(
void f(const char* p) {
  auto* q = reinterpret_cast<const unsigned char*>(p);
  (void)q;
}
)");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "cast");
  EXPECT_EQ(result.diagnostics[0].line, 3u);
}

TEST(LintCast, BlessedBridgeFileIsExempt) {
  const auto result = lint_one("src/util/bytes.cpp", R"(
const char* f(const unsigned char* p) {
  return reinterpret_cast<const char*>(p);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintCast, IgnoresCastsInCommentsAndStrings) {
  const auto result = lint_one("src/net/foo.cpp", R"(
// reinterpret_cast in a comment is fine
const char* kDoc = "reinterpret_cast in a string is fine";
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintCast, AllowWithReasonSuppressesAndIsCounted) {
  const auto result = lint_one("src/net/foo.cpp", R"(
void f(const char* p) {
  // wm-lint: allow(cast): FFI boundary, audited 2026-08.
  auto* q = reinterpret_cast<const unsigned char*>(p);
  (void)q;
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("cast"), 1u);
}

TEST(LintCast, AllowWithoutReasonIsItselfADiagnostic) {
  const auto result = lint_one("src/net/foo.cpp", R"(
void f(const char* p) {
  auto* q = reinterpret_cast<const unsigned char*>(p);  // wm-lint: allow(cast)
  (void)q;
}
)");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "cast");
  EXPECT_NE(result.diagnostics[0].message.find("without a reason"),
            std::string::npos);
}

// --- rule: borrow ----------------------------------------------------

TEST(LintBorrow, FlagsViewMemberInOwningRecord) {
  const auto result = lint_one("include/wm/net/thing.hpp", R"(
namespace wm::net {
struct ParsedFrame {
  util::BytesView payload;
  int kind = 0;
};
}
)");
  ASSERT_TRUE(has_rule(result, "borrow"));
  EXPECT_EQ(result.diagnostics[0].line, 4u);
}

TEST(LintBorrow, ViewNamedRecordsAreExempt) {
  const auto result = lint_one("include/wm/net/thing.hpp", R"(
struct FrameView {
  util::BytesView payload;
  std::string_view name;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintBorrow, LocalsAndParametersAreNotMembers) {
  const auto result = lint_one("src/net/thing.cpp", R"(
void consume(util::BytesView payload) {
  util::BytesView rest = payload;
  (void)rest;
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintBorrow, MethodBodiesInsideRecordsAreNotFlagged) {
  const auto result = lint_one("include/wm/net/thing.hpp", R"(
class Parser {
 public:
  void step() {
    std::string_view token = next();
    use(token);
  }
 private:
  std::string buffer_;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintBorrow, OnlyLibraryTreesAreScanned) {
  const auto result = lint_one("tests/test_thing.cpp", R"(
struct Probe {
  util::BytesView payload;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintBorrow, SuppressibleWithReason) {
  const auto result = lint_one("include/wm/net/thing.hpp", R"(
struct Batch {
  // wm-lint: allow(borrow): views die with the arena they index into.
  util::BytesView payload;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("borrow"), 1u);
}

TEST(LintBorrow, AllowReachesThroughAMultiLineCommentBlock) {
  // Real justifications wrap; the whole contiguous comment block above
  // a finding shields it, not just the single preceding line.
  const auto result = lint_one("include/wm/net/thing.hpp", R"(
struct Batch {
  // wm-lint: allow(borrow): long-winded justification that needs a
  // second line to fully explain the lifetime contract involved here.
  util::BytesView payload;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("borrow"), 1u);
}

// --- rule: nodiscard -------------------------------------------------

TEST(LintNodiscard, ResultClassHeadMustCarryAttribute) {
  const auto result = lint_one("include/wm/util/result.hpp", R"(
template <typename T>
class Result {
 public:
  bool ok() const;
};
)");
  ASSERT_TRUE(has_rule(result, "nodiscard"));
  EXPECT_TRUE(result.diagnostics[0].fixable);
}

TEST(LintNodiscard, AttributedResultClassIsClean) {
  const auto result = lint_one("include/wm/util/result.hpp", R"(
template <typename T>
class [[nodiscard]] Result {
 public:
  bool ok() const;
};
)");
  EXPECT_FALSE(has_rule(result, "nodiscard"));
}

TEST(LintNodiscard, HeaderDeclReturningResultNeedsAttribute) {
  const auto result = lint_one("include/wm/net/io.hpp", R"(
Result<int> parse_header(BytesView data);
)");
  ASSERT_TRUE(has_rule(result, "nodiscard"));
  EXPECT_TRUE(result.diagnostics[0].fixable);
}

TEST(LintNodiscard, AttributeOnPreviousLineCounts) {
  const auto result = lint_one("include/wm/net/io.hpp", R"(
[[nodiscard]] Result<int> parse_header(BytesView data);
[[nodiscard]]
Result<int> parse_trailer(BytesView data);
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintNodiscard, ParserApisNeedAttribute) {
  const auto result = lint_one("include/wm/util/reader.hpp", R"(
class Reader {
 public:
  std::uint16_t read_u16_be();
};
)");
  ASSERT_TRUE(has_rule(result, "nodiscard"));
}

TEST(LintNodiscard, UseSitesAreNotDeclarations) {
  // Regression: `return try_pop(out);` and member calls must not be
  // mistaken for undecorated declarations (the fixer once stamped
  // [[nodiscard]] onto a return statement).
  const auto result = lint_one("include/wm/util/ring.hpp", R"(
class Ring {
 public:
  [[nodiscard]] bool try_pop(int& out);
  bool pop_blocking(int& out) {
    while (spinning()) {
      if (inner_.try_pop(out)) return true;
    }
    return try_pop(out);
  }
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintNodiscard, FriendAndUsingDeclsAreSkipped) {
  const auto result = lint_one("include/wm/net/io.hpp", R"(
class Source {
  friend Result<int> open_capture(const std::string& path);
  using ReadFn = int (*)(char*);
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintNodiscard, BareKnownCallIsFlaggedEverywhere) {
  const auto result = lint_one("tests/test_engine.cpp", R"(
void f() {
  open_capture("trace.pcap");
}
)");
  ASSERT_TRUE(has_rule(result, "nodiscard"));
}

TEST(LintNodiscard, BareMonitorEntryPointsAreFlagged) {
  // The live-source entry points joined the bare-call list: a bare
  // try_inject loses the packet on a full tap, a bare read_batch
  // cannot see end-of-stream.
  const auto dropped = lint_one("examples/live_monitor.cpp", R"(
void f(Tap& tap, Source& source, Batch& batch) {
  tap.try_inject(packet);
  source.read_batch(batch, 256);
}
)");
  ASSERT_TRUE(has_rule(dropped, "nodiscard"));
  EXPECT_EQ(dropped.diagnostics.size(), 2u);

  const auto consumed = lint_one("examples/live_monitor.cpp", R"(
void f(Tap& tap, Source& source, Batch& batch) {
  while (!tap.try_inject(packet)) drain(tap);
  const std::size_t count = source.read_batch(batch, 256);
  use(count);
}
)");
  EXPECT_TRUE(consumed.diagnostics.empty());
}

TEST(LintNodiscard, ConsumedKnownCallIsClean) {
  const auto result = lint_one("tests/test_engine.cpp", R"(
void f() {
  auto source = open_capture("trace.pcap");
  if (!source.ok()) return;
  return open_capture("other.pcap");
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

// --- rule: stability -------------------------------------------------

TEST(LintStability, RegistrationWithoutStabilityIsFlagged) {
  const auto result = lint_one("src/core/pipeline.cpp", R"(
void wire(obs::Registry& registry) {
  packets_ = registry.counter("pipeline.packets");
}
)");
  ASSERT_TRUE(has_rule(result, "stability"));
}

TEST(LintStability, ExplicitStabilityArgumentIsClean) {
  const auto result = lint_one("src/core/pipeline.cpp", R"(
void wire(obs::Registry& registry) {
  packets_ = registry.counter("pipeline.packets", obs::Stability::kStable);
  depth_ = registry.histogram("pipeline.depth",
                              obs::Stability::kSharded);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintStability, MultiLineCallsAreBalancedAcrossLines) {
  const auto result = lint_one("src/core/pipeline.cpp", R"(
void wire(obs::Registry& registry) {
  packets_ = registry.counter(
      "pipeline.packets",
      config_.metrics_stability);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintStability, ObsLayerItselfIsExempt) {
  const auto result = lint_one("src/obs/registry.cpp", R"(
CounterHandle Registry::counter(std::string name) {
  return self_.counter(std::move(name));
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

// --- rule: mutex -----------------------------------------------------

TEST(LintMutex, MutexInEnginePathIsFlagged) {
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
class Worker {
  std::mutex state_mutex_;
};
)");
  ASSERT_TRUE(has_rule(result, "mutex"));
}

TEST(LintMutex, ColdPathFilesMayUseMutexes) {
  const auto result = lint_one("src/dataset/store.cpp", R"(
class Store {
  util::Mutex mutex_;
  int state_ WM_GUARDED_BY(mutex_);
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintMutex, HotPathTagOptsAFileIn) {
  const auto result = lint_one("src/dataset/store.cpp", R"(
// wm-lint: hot-path
class Store {
  std::shared_mutex mutex_;
};
)");
  ASSERT_TRUE(has_rule(result, "mutex"));
}

TEST(LintMutex, SuppressibleWithReason) {
  const auto result = lint_one("src/core/engine/collector.cpp", R"(
class Collector {
  // wm-lint: allow(mutex): merge path only, never under the ingest loop.
  util::Mutex merge_mutex_;
  int merged_ WM_GUARDED_BY(merge_mutex_);
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("mutex"), 1u);
}

TEST(LintMutex, AnnotatedWrapperStillCountsAsAMutexOnTheHotPath) {
  // util::Mutex is -Wthread-safety-visible but it is still a lock; the
  // hot-path ban applies to it exactly as to std::mutex.
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
class Worker {
  util::Mutex state_mutex_;
  int state_ WM_GUARDED_BY(state_mutex_);
};
)");
  ASSERT_TRUE(has_rule(result, "mutex"));
}

// --- rule: suppression -----------------------------------------------

TEST(LintSuppression, UnusedAllowIsReported) {
  const auto result = lint_one("src/net/foo.cpp", R"(
// wm-lint: allow(cast): stale justification for code long deleted.
int x = 1;
)");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "suppression");
  EXPECT_NE(result.diagnostics[0].message.find("matches no finding"),
            std::string::npos);
}

TEST(LintSuppression, UnknownRuleNameIsReported) {
  const auto result = lint_one("src/net/foo.cpp", R"(
// wm-lint: allow(everything): please.
int x = 1;
)");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "suppression");
}

TEST(LintSuppression, InlineCommentOnPrecedingCodeLineDoesNotLeak) {
  // An allow() in a trailing comment shields its own line only; the
  // next line's finding must still fire.
  const auto result = lint_one("src/net/foo.cpp", R"(
void f(const char* p) {
  int unrelated = 0;  // wm-lint: allow(cast): not above, inline elsewhere.
  auto* q = reinterpret_cast<const unsigned char*>(p);
  (void)q; (void)unrelated;
}
)");
  EXPECT_TRUE(has_rule(result, "cast"));
  EXPECT_TRUE(has_rule(result, "suppression"));
}


// --- rule: guarded ---------------------------------------------------

TEST(LintGuarded, RawStdMutexInLibraryCodeIsFlagged) {
  const auto result = lint_one("src/dataset/store.cpp", R"(
class Store {
  std::mutex mutex_;
};
)");
  ASSERT_TRUE(has_rule(result, "guarded"));
}

TEST(LintGuarded, MutexMemberWithoutGuardedSiblingIsFlagged) {
  const auto result = lint_one("include/wm/dataset/store.hpp", R"(
class Store {
  util::Mutex mutex_;
  int state_ = 0;
};
)");
  ASSERT_TRUE(has_rule(result, "guarded"));
  EXPECT_NE(result.diagnostics[0].message.find("WM_GUARDED_BY"),
            std::string::npos);
}

TEST(LintGuarded, GuardedSiblingSatisfiesTheContract) {
  const auto result = lint_one("include/wm/dataset/store.hpp", R"(
class Store {
  util::Mutex mutex_;
  int state_ WM_GUARDED_BY(mutex_) = 0;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintGuarded, PtGuardedSiblingAlsoCounts) {
  const auto result = lint_one("include/wm/dataset/store.hpp", R"(
class Store {
  util::Mutex mutex_;
  int* state_ WM_PT_GUARDED_BY(mutex_) = nullptr;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintGuarded, PlainCondvarCannotPairWithTheWrapper) {
  const auto result = lint_one("src/dataset/store.cpp", R"(
class Store {
  std::condition_variable cv_;
};
)");
  ASSERT_TRUE(has_rule(result, "guarded"));
}

TEST(LintGuarded, SuppressibleWithReason) {
  // A pure serialization mutex guards no member; the author states so.
  const auto result = lint_one("src/dataset/store.cpp", R"(
class Store {
  // wm-lint: allow(guarded): serializes flush() calls; guards no data.
  util::Mutex flush_mutex_;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("guarded"), 1u);
}

TEST(LintGuarded, TestTreeIsExempt) {
  const auto result = lint_one("tests/test_store.cpp", R"(
class Probe {
  std::mutex mutex_;
};
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

// --- rule: atomic-order ----------------------------------------------

TEST(LintAtomicOrder, ImplicitSeqCstInHotPathFileIsFlagged) {
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
void f(std::atomic<int>& flag) {
  flag.store(1);
}
)");
  ASSERT_TRUE(has_rule(result, "atomic-order"));
}

TEST(LintAtomicOrder, EveryMutatorSpellingIsCovered) {
  const auto result = lint_one("include/wm/obs/metrics.hpp", R"(
void f(std::atomic<int>& v, int x) {
  (void)v.load();
  v.store(1);
  (void)v.exchange(2);
  (void)v.fetch_add(1);
  (void)v.fetch_sub(1);
  (void)v.compare_exchange_weak(x, 3);
  (void)v.compare_exchange_strong(x, 4);
}
)");
  EXPECT_EQ(result.diagnostics.size(), 7u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, "atomic-order");
  }
}

TEST(LintAtomicOrder, ExplicitOrderIsClean) {
  const auto result = lint_one("src/monitor/fleet.cpp", R"(
void f(std::atomic<int>& flag, int x) {
  flag.store(1, std::memory_order_release);
  (void)flag.load(std::memory_order_acquire);
  (void)flag.compare_exchange_strong(x, 2, std::memory_order_acq_rel,
                                     std::memory_order_acquire);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintAtomicOrder, OrderOnAContinuationLineIsSeen) {
  // The argument scan balances parens across lines, exactly like the
  // stability rule.
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
void f(std::atomic<int>& flag) {
  flag.store(1,
             std::memory_order_release);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintAtomicOrder, ColdPathFilesAreExempt) {
  const auto result = lint_one("src/dataset/store.cpp", R"(
void f(std::atomic<int>& flag) {
  flag.store(1);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintAtomicOrder, HotPathTagOptsAFileIn) {
  const auto result = lint_one("src/dataset/store.cpp", R"(
// wm-lint: hot-path
void f(std::atomic<int>& flag) {
  flag.store(1);
}
)");
  ASSERT_TRUE(has_rule(result, "atomic-order"));
}

TEST(LintAtomicOrder, SuppressibleWithReason) {
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
void f(std::atomic<int>& flag) {
  // wm-lint: allow(atomic-order): deliberate seq_cst — wakeup handshake.
  flag.store(1);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("atomic-order"), 1u);
}

TEST(LintAtomicOrder, NonAtomicMethodNamesDoNotTrip) {
  const auto result = lint_one("src/monitor/fleet.cpp", R"(
void f(Config& config, Payload& p) {
  config.reload();
  p.restore(1);
  offload(p);
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
}

// --- rule: sink-contract (cross-file) --------------------------------

TEST(LintSinkContract, UnmarkedSinkConstructedInFleetIsFlagged) {
  const auto result = lint_files({
      SourceFile{"include/wm/core/engine/probe.hpp", R"(
class ProbeSink final : public engine::EventSink {
 public:
  void on_question_opened(const QuestionOpenedEvent& event) override;
};
)"},
      SourceFile{"src/monitor/fleet.cpp", R"(
void wire() {
  auto sink = std::make_unique<ProbeSink>();
}
)"},
  });
  ASSERT_TRUE(has_rule(result, "sink-contract"));
  // The finding lands at the construction site and names the
  // definition file.
  const Diagnostic& d = result.diagnostics[0];
  EXPECT_EQ(d.path, "src/monitor/fleet.cpp");
  EXPECT_NE(d.message.find("include/wm/core/engine/probe.hpp"),
            std::string::npos);
}

TEST(LintSinkContract, ThreadsafeMarkOnTheHeadLineClears) {
  const auto result = lint_files({
      SourceFile{"include/wm/core/engine/probe.hpp", R"(
// wm-lint: sink(threadsafe): deliver() takes the collector mutex.
class ProbeSink final : public engine::EventSink {
};
)"},
      SourceFile{"src/monitor/fleet.cpp", R"(
void wire() {
  auto sink = std::make_unique<ProbeSink>();
}
)"},
  });
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintSinkContract, NewExpressionIsAlsoAConstruction) {
  const auto result = lint_files({
      SourceFile{"include/wm/core/engine/probe.hpp", R"(
struct ProbeSink : engine::EventSink {
};
)"},
      SourceFile{"src/monitor/fleet.cpp", R"(
void wire() {
  auto* sink = new ProbeSink();
  (void)sink;
}
)"},
  });
  ASSERT_TRUE(has_rule(result, "sink-contract"));
}

TEST(LintSinkContract, ConstructionOutsideTheFleetIsFine) {
  // Sinks built by application code are fed from whatever thread the
  // application chooses; the fleet contract does not apply.
  const auto result = lint_files({
      SourceFile{"include/wm/core/engine/probe.hpp", R"(
class ProbeSink final : public engine::EventSink {
};
)"},
      SourceFile{"examples/live_monitor.cpp", R"(
void wire() {
  auto sink = std::make_unique<ProbeSink>();
}
)"},
  });
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintSinkContract, NonSinkConstructionsAreIgnored) {
  const auto result = lint_files({
      SourceFile{"include/wm/core/engine/probe.hpp", R"(
class ProbeSink final : public engine::EventSink {
};
)"},
      SourceFile{"src/monitor/fleet.cpp", R"(
void wire() {
  auto ring = std::make_unique<util::SpscRing<net::Packet>>(1024);
  auto* plain = new PlainHelper();
  (void)plain;
}
)"},
  });
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LintSinkContract, SuppressibleAtTheConstructionSite) {
  const auto result = lint_files({
      SourceFile{"include/wm/core/engine/probe.hpp", R"(
class ProbeSink final : public engine::EventSink {
};
)"},
      SourceFile{"src/monitor/fleet.cpp", R"(
void wire() {
  // wm-lint: allow(sink-contract): wired behind the collector lock.
  auto sink = std::make_unique<ProbeSink>();
}
)"},
  });
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("sink-contract"), 1u);
}

// --- suppression shield across multi-line declarations ---------------

TEST(LintSuppression, AllowAboveAMultiLineDeclarationAttaches) {
  // Regression: the finding fires on a continuation line (the `.load()`
  // lands one line below the declaration head); the allow above the
  // first line must still shield it.
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
void f(std::atomic<int>& flag) {
  // wm-lint: allow(atomic-order): seq_cst handshake, audited.
  const int value = flag
                        .load();
  (void)value;
}
)");
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.stats.suppressions.at("atomic-order"), 1u);
}

TEST(LintSuppression, StatementBoundaryStillStopsTheShieldWalk) {
  // The walk crosses continuations, never a completed statement: an
  // allow two statements up must not leak downward.
  const auto result = lint_one("src/core/engine/worker.cpp", R"(
void f(std::atomic<int>& flag) {
  // wm-lint: allow(atomic-order): shields only the next statement.
  flag.store(1);
  flag.store(2);
}
)");
  EXPECT_TRUE(has_rule(result, "atomic-order"));
  EXPECT_EQ(result.stats.suppressions.at("atomic-order"), 1u);
}

// --- fix-nodiscard ---------------------------------------------------

TEST(LintFix, InsertsAttributeAtFixableSites) {
  Options options;
  options.fix_nodiscard = true;
  const auto result = lint_one("include/wm/net/io.hpp",
                               "Result<int> parse(BytesView data);\n",
                               options);
  ASSERT_EQ(result.fixes.size(), 1u);
  EXPECT_EQ(result.fixes.at("include/wm/net/io.hpp"),
            "[[nodiscard]] Result<int> parse(BytesView data);\n");
}

TEST(LintFix, ClassHeadsGetAttributeAfterKeyword) {
  Options options;
  options.fix_nodiscard = true;
  const auto result = lint_one("include/wm/util/result.hpp",
                               "class Result {\n};\n", options);
  ASSERT_EQ(result.fixes.size(), 1u);
  EXPECT_EQ(result.fixes.at("include/wm/util/result.hpp"),
            "class [[nodiscard]] Result {\n};\n");
}

TEST(LintFix, NoFixesWithoutTheFlag) {
  const auto result =
      lint_one("include/wm/net/io.hpp", "Result<int> parse(BytesView d);\n");
  EXPECT_TRUE(result.fixes.empty());
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_TRUE(result.diagnostics[0].fixable);
}

// --- stats / plumbing ------------------------------------------------

TEST(LintStats, JsonIsCanonicalAndSorted) {
  const auto result = lint_one("src/net/foo.cpp", R"(
void f(const char* p) {
  auto* q = reinterpret_cast<const unsigned char*>(p);
  (void)q;
}
)");
  const std::string json = result.stats.to_json();
  EXPECT_EQ(json.find("{\"diagnostics\":{\"cast\":1}"), 0u);
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rules\":[\"atomic-order\",\"borrow\","), std::string::npos);
  EXPECT_NE(json.find("\"suppressions\":{}"), std::string::npos);
  // rules must come before suppressions (keys stay sorted).
  EXPECT_LT(json.find("\"rules\""), json.find("\"suppressions\""));
}

TEST(LintStats, DiagnosticRendering) {
  Diagnostic d;
  d.rule = "cast";
  d.path = "src/net/foo.cpp";
  d.line = 12;
  d.message = "bad";
  EXPECT_EQ(d.to_string(), "src/net/foo.cpp:12: [cast] bad");
}

TEST(LintPlumbing, LoadFileReportsMissingPaths) {
  const auto loaded =
      wm::lint::load_file("/nonexistent/nope.cpp", "src/nope.cpp");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code, wm::ErrorCode::kNotFound);
}

TEST(LintPlumbing, RuleNamesAreStable) {
  const auto& names = wm::lint::rule_names();
  EXPECT_EQ(names.size(), 9u);
  EXPECT_NE(std::find(names.begin(), names.end(), "borrow"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "guarded"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "atomic-order"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sink-contract"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "suppression"),
            names.end());
}

}  // namespace
