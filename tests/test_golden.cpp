// Golden-trace replay: every committed fixture capture must decode to
// its committed .expected.json — same choice sequence, same record
// tallies, and a byte-identical stable wm::obs counter snapshot — from
// both the inline engine and a sharded run. This pins the whole stack
// (capture readers, reassembly, TLS parsing, classification, decode,
// instrumentation) against silent behavioural drift: any change that
// alters what a fixed capture means fails here first.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "golden_common.hpp"
#include "wm/obs/registry.hpp"
#include "wm/util/json.hpp"

#ifndef WM_GOLDEN_DIR
#define WM_GOLDEN_DIR "."
#endif

namespace wm::golden {
namespace {

util::JsonValue load_json(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return util::JsonValue::parse(buffer.str());
}

class GoldenFixture : public ::testing::TestWithParam<FixtureSpec> {};

TEST_P(GoldenFixture, ReplayMatchesExpectedDecodeAndSnapshot) {
  const FixtureSpec& spec = GetParam();
  const std::filesystem::path dir = WM_GOLDEN_DIR;
  const auto capture_path =
      dir / (spec.name + (spec.pcapng ? ".pcapng" : ".pcap"));
  const auto expected_path = dir / (spec.name + ".expected.json");
  ASSERT_TRUE(std::filesystem::exists(capture_path))
      << capture_path << " missing — run gen_fixtures";
  ASSERT_TRUE(std::filesystem::exists(expected_path))
      << expected_path << " missing — run gen_fixtures";

  const util::JsonValue expected = load_json(expected_path);
  const core::AttackPipeline pipeline = calibrated_pipeline();

  // The expectation holds for the inline engine AND a sharded run: the
  // stable section is shard-count-invariant by design.
  for (const std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    const std::string context =
        spec.name + " shards=" + std::to_string(shards);
    obs::Registry registry;
    core::InferOptions options;
    options.shards = shards;
    options.per_client = true;
    options.metrics = &registry;
    const auto report = pipeline.infer_capture(capture_path, options);
    ASSERT_TRUE(report.ok()) << context << ": " << report.error().to_string();

    // Choice sequence.
    const auto choices = report->combined.choices();
    const auto& expected_choices = expected.at("choices").as_array();
    ASSERT_EQ(choices.size(), expected_choices.size()) << context;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      const std::string got = choices[i] == story::Choice::kNonDefault
                                  ? "non_default"
                                  : "default";
      EXPECT_EQ(got, expected_choices[i].as_string()) << context << " Q" << i;
    }

    // Record tallies.
    EXPECT_EQ(static_cast<std::int64_t>(report->combined.type1_records),
              expected.at("type1_records").as_int()) << context;
    EXPECT_EQ(static_cast<std::int64_t>(report->combined.type2_records),
              expected.at("type2_records").as_int()) << context;
    EXPECT_EQ(static_cast<std::int64_t>(report->combined.other_records),
              expected.at("other_records").as_int()) << context;

    // Per-viewer separation.
    const auto& viewers = expected.at("viewers").as_array();
    ASSERT_EQ(report->per_client.size(), viewers.size()) << context;
    for (const auto& viewer : viewers) {
      const std::string& client = viewer.at("client").as_string();
      ASSERT_TRUE(report->per_client.count(client)) << context << " " << client;
      EXPECT_EQ(static_cast<std::int64_t>(
                    report->per_client.at(client).questions.size()),
                viewer.at("questions").as_int())
          << context << " " << client;
    }

    // Counter snapshot: the stable section must serialize to exactly
    // the committed bytes (both are canonical compact JSON).
    EXPECT_EQ(registry.snapshot().stable_json(), expected.at("stable").dump())
        << context;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenFixture,
                         ::testing::ValuesIn(fixture_specs()),
                         [](const ::testing::TestParamInfo<FixtureSpec>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace wm::golden
