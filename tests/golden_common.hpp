// Shared recipe for the golden-trace corpus: the fixture generator
// (gen_fixtures.cpp) and the replay test (test_golden.cpp) must agree
// on every seed, impairment, and calibration input, or the committed
// .expected.json files would drift from what the test reproduces.
// Everything here is deterministic: fixed seeds, platform-stable Rng.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "wm/core/pipeline.hpp"
#include "wm/sim/impairments.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::golden {

/// One fixture: a tiny capture file plus its expected decode/snapshot.
struct FixtureSpec {
  std::string name;    // file stem: <name>.pcap[ng] / <name>.expected.json
  bool pcapng = false; // container format to exercise both readers
};

inline const std::vector<FixtureSpec>& fixture_specs() {
  static const std::vector<FixtureSpec> specs = {
      {"single_viewer", false},
      {"two_viewers", true},
      {"lossy_capture", false},
      {"snaplen_trimmed", false},
  };
  return specs;
}

inline std::vector<story::Choice> golden_choices(std::size_t n,
                                                 bool start_non_default) {
  std::vector<story::Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    const bool non_default = (i % 2 == 0) == start_non_default;
    out.push_back(non_default ? story::Choice::kNonDefault
                              : story::Choice::kDefault);
  }
  return out;
}

inline std::vector<net::Packet> one_viewer(const story::StoryGraph& graph,
                                           std::uint64_t seed,
                                           std::size_t choices,
                                           bool start_non_default,
                                           std::uint8_t ip_octet = 10,
                                           std::uint16_t port_base = 54000) {
  sim::SessionConfig config;
  config.seed = seed;
  // Committed-corpus diet: the side-channel lives in the API flow's
  // client record lengths, so the media bitrate and cross traffic can
  // be minimal without touching what the attack (or its counters)
  // sees. Keeps each fixture capture small enough to commit.
  config.streaming.bitrate_kbps = 24;
  config.streaming.time_scale = 0.05;
  config.packetize.include_cross_traffic = false;
  config.packetize.client_ip = net::Ipv4Address(10, 0, 3, ip_octet);
  config.packetize.cdn_client_port = port_base;
  config.packetize.api_client_port = static_cast<std::uint16_t>(port_base + 1);
  return sim::simulate_session(graph, golden_choices(choices, start_non_default),
                               config)
      .capture.packets;
}

/// The deterministic packet stream behind fixture `name`.
inline std::vector<net::Packet> fixture_packets(const std::string& name) {
  const story::StoryGraph graph = story::make_bandersnatch();
  if (name == "single_viewer") {
    // One viewer, five choice points: the smallest end-to-end decode.
    return one_viewer(graph, 8811, 5, true);
  }
  if (name == "two_viewers") {
    // Two staggered viewers behind one tap, merged by time — exercises
    // per-client separation and the pcapng reader.
    std::vector<net::Packet> merged;
    for (std::size_t v = 0; v < 2; ++v) {
      auto packets = one_viewer(graph, 8821 + v, 4, v == 0,
                                static_cast<std::uint8_t>(20 + v),
                                static_cast<std::uint16_t>(54100 + 2 * v));
      const util::Duration stagger =
          util::Duration::millis(1300) * static_cast<int>(v);
      for (net::Packet& packet : packets) {
        packet.timestamp += stagger;
        merged.push_back(std::move(packet));
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const net::Packet& a, const net::Packet& b) {
                       return a.timestamp < b.timestamp;
                     });
    return merged;
  }
  if (name == "lossy_capture") {
    // 3% seeded capture loss: gaps are permanent for the observer.
    util::Rng rng(8831);
    return sim::drop_packets(one_viewer(graph, 8831, 5, false), 0.03, rng);
  }
  if (name == "snaplen_trimmed") {
    // tcpdump -s 200 style truncation; original_length preserved.
    return sim::truncate_snaplen(one_viewer(graph, 8841, 5, true), 200);
  }
  return {};
}

/// The corpus classifier: calibrated from three fixed-seed sessions,
/// identically in the generator and the test.
inline core::AttackPipeline calibrated_pipeline() {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 8800 + s;
    auto session =
        sim::simulate_session(graph, golden_choices(13, true), config);
    calibration.push_back(core::CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  core::AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

}  // namespace wm::golden
