// Header serialize/parse round trips and checksum correctness.
#include <gtest/gtest.h>

#include "wm/net/checksum.hpp"
#include "wm/net/headers.hpp"
#include "wm/net/packet_builder.hpp"

namespace wm::net {
namespace {

using util::ByteWriter;
using util::Bytes;

TEST(Checksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const Bytes data = util::from_hex("0001f203f4f5f6f7");
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroOverComplementedData) {
  // Appending the checksum makes the sum complement to zero.
  Bytes data = util::from_hex("45000054abcd40004001");
  const std::uint16_t checksum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(checksum >> 8));
  data.push_back(static_cast<std::uint8_t>(checksum & 0xff));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Checksum, OddLengthHandled) {
  const Bytes even = util::from_hex("ab00");
  const Bytes odd = util::from_hex("ab");
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, AccumulatorMatchesOneShot) {
  const Bytes data = util::from_hex("0102030405060708090a0b");
  ChecksumAccumulator acc;
  acc.add(util::BytesView(data).subspan(0, 3));  // odd split
  acc.add(util::BytesView(data).subspan(3, 5));
  acc.add(util::BytesView(data).subspan(8));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Ethernet, SerializeParseRoundTrip) {
  EthernetHeader header;
  header.destination = *MacAddress::parse("aa:bb:cc:dd:ee:ff");
  header.source = *MacAddress::parse("02:00:00:00:00:01");
  header.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  ByteWriter out;
  header.serialize(out);
  Bytes frame = out.take();
  frame.push_back(0x99);  // one payload byte

  const auto parsed = parse_ethernet(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.destination, header.destination);
  EXPECT_EQ(parsed->header.source, header.source);
  EXPECT_EQ(parsed->header.ether_type, header.ether_type);
  ASSERT_EQ(parsed->payload.size(), 1u);
  EXPECT_EQ(parsed->payload[0], 0x99);
}

TEST(Ethernet, TooShortRejected) {
  const Bytes short_frame(13, 0);
  EXPECT_FALSE(parse_ethernet(short_frame).has_value());
}

TEST(Ipv4, SerializeParseRoundTrip) {
  Ipv4Header header;
  header.identification = 0x1234;
  header.ttl = 57;
  header.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  header.source = Ipv4Address(10, 0, 0, 5);
  header.destination = Ipv4Address(198, 51, 100, 7);

  ByteWriter out;
  header.serialize(out, 4);
  Bytes packet = out.take();
  for (std::uint8_t b : {1, 2, 3, 4}) packet.push_back(b);

  const auto parsed = parse_ipv4(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->checksum_valid);
  EXPECT_EQ(parsed->header.identification, 0x1234);
  EXPECT_EQ(parsed->header.ttl, 57);
  EXPECT_EQ(parsed->header.source, header.source);
  EXPECT_EQ(parsed->header.destination, header.destination);
  EXPECT_EQ(parsed->header.total_length, 24);
  ASSERT_EQ(parsed->payload.size(), 4u);
  EXPECT_EQ(parsed->payload[3], 4);
}

TEST(Ipv4, CorruptChecksumDetected) {
  Ipv4Header header;
  header.protocol = 6;
  ByteWriter out;
  header.serialize(out, 0);
  Bytes packet = out.take();
  packet[8] ^= 0xff;  // corrupt TTL
  const auto parsed = parse_ipv4(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->checksum_valid);
}

TEST(Ipv4, RejectsWrongVersionAndBadLengths) {
  Ipv4Header header;
  ByteWriter out;
  header.serialize(out, 0);
  Bytes packet = out.take();

  Bytes wrong_version = packet;
  wrong_version[0] = 0x65;  // version 6
  EXPECT_FALSE(parse_ipv4(wrong_version).has_value());

  Bytes bad_ihl = packet;
  bad_ihl[0] = 0x44;  // IHL 4 -> 16 bytes < minimum
  EXPECT_FALSE(parse_ipv4(bad_ihl).has_value());

  Bytes truncated(packet.begin(), packet.begin() + 10);
  EXPECT_FALSE(parse_ipv4(truncated).has_value());
}

TEST(Ipv4, OptionsRoundTrip) {
  Ipv4Header header;
  header.options = {0x01, 0x01, 0x01, 0x01};  // NOP x4
  ByteWriter out;
  header.serialize(out, 0);
  const auto parsed = parse_ipv4(out.view());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.options, header.options);
  EXPECT_TRUE(parsed->checksum_valid);
}

TEST(Ipv6, SerializeParseRoundTrip) {
  Ipv6Header header;
  header.traffic_class = 0x12;
  header.flow_label = 0xabcde;
  header.next_header = static_cast<std::uint8_t>(IpProtocol::kTcp);
  header.hop_limit = 61;
  header.source = *Ipv6Address::parse("2001:db8::1");
  header.destination = *Ipv6Address::parse("2001:db8::2");

  ByteWriter out;
  header.serialize(out, 3);
  Bytes packet = out.take();
  packet.insert(packet.end(), {0xaa, 0xbb, 0xcc});

  const auto parsed = parse_ipv6(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.traffic_class, 0x12);
  EXPECT_EQ(parsed->header.flow_label, 0xabcdeu);
  EXPECT_EQ(parsed->header.hop_limit, 61);
  EXPECT_EQ(parsed->header.source, header.source);
  ASSERT_EQ(parsed->payload.size(), 3u);
}

TEST(Ipv6, RejectsTruncatedPayload) {
  Ipv6Header header;
  ByteWriter out;
  header.serialize(out, 10);  // claims 10 payload bytes
  EXPECT_FALSE(parse_ipv6(out.view()).has_value());  // none present
}

TEST(Tcp, SerializeParseRoundTrip) {
  TcpHeader header;
  header.source_port = 51342;
  header.destination_port = 443;
  header.sequence = 0xdeadbeef;
  header.ack_number = 0x01020304;
  header.syn = true;
  header.ack = true;
  header.window = 29200;

  ByteWriter out;
  header.serialize(out);
  Bytes segment = out.take();
  segment.push_back(0x77);

  const auto parsed = parse_tcp(segment);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.source_port, 51342);
  EXPECT_EQ(parsed->header.destination_port, 443);
  EXPECT_EQ(parsed->header.sequence, 0xdeadbeefu);
  EXPECT_TRUE(parsed->header.syn);
  EXPECT_TRUE(parsed->header.ack);
  EXPECT_FALSE(parsed->header.fin);
  EXPECT_EQ(parsed->header.window, 29200);
  ASSERT_EQ(parsed->payload.size(), 1u);
}

TEST(Tcp, OptionsPaddedToWordBoundary) {
  TcpHeader header;
  header.options = {0x02, 0x04, 0x05, 0xb4, 0x01};  // 5 bytes -> pad to 8
  ByteWriter out;
  header.serialize(out);
  EXPECT_EQ(out.size(), TcpHeader::kMinSize + 8);
  const auto parsed = parse_tcp(out.view());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.options.size(), 8u);
}

TEST(Tcp, FlagsString) {
  TcpHeader header;
  EXPECT_EQ(header.flags_string(), "-");
  header.syn = true;
  header.ack = true;
  EXPECT_EQ(header.flags_string(), "SYN|ACK");
}

TEST(Tcp, RejectsBadOffset) {
  TcpHeader header;
  ByteWriter out;
  header.serialize(out);
  Bytes segment = out.take();
  segment[12] = 0x30;  // data offset 3 words < 5
  EXPECT_FALSE(parse_tcp(segment).has_value());
}

TEST(Udp, SerializeParseRoundTrip) {
  UdpHeader header;
  header.source_port = 5353;
  header.destination_port = 5353;
  ByteWriter out;
  header.serialize(out, 2);
  Bytes datagram = out.take();
  datagram.insert(datagram.end(), {0x01, 0x02});
  const auto parsed = parse_udp(datagram);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.length, 10);
  ASSERT_EQ(parsed->payload.size(), 2u);
}

TEST(Udp, RejectsBadLength) {
  UdpHeader header;
  ByteWriter out;
  header.serialize(out, 100);  // claims 100 payload bytes
  EXPECT_FALSE(parse_udp(out.view()).has_value());
}

TEST(PacketBuilder, TcpPacketHasValidChecksums) {
  TcpHeader tcp;
  tcp.source_port = 1000;
  tcp.destination_port = 443;
  tcp.sequence = 1;
  tcp.ack = true;
  const Bytes payload = {0x16, 0x03, 0x03};
  const Packet packet = build_tcp_packet(
      util::SimTime::from_seconds(1.0), *MacAddress::parse("02:00:00:00:00:01"),
      *MacAddress::parse("02:00:00:00:00:02"), Ipv4Address(10, 0, 0, 1),
      Ipv4Address(10, 0, 0, 2), tcp, payload, 7);

  const auto eth = parse_ethernet(packet.data);
  ASSERT_TRUE(eth.has_value());
  const auto ip = parse_ipv4(eth->payload);
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->checksum_valid);

  // Transport checksum validates over the pseudo-header.
  const std::uint16_t check = transport_checksum_v4(
      ip->header.source, ip->header.destination,
      IpProtocolValue{static_cast<std::uint8_t>(IpProtocol::kTcp)}, ip->payload);
  EXPECT_EQ(check, 0);

  const auto parsed_tcp = parse_tcp(ip->payload);
  ASSERT_TRUE(parsed_tcp.has_value());
  EXPECT_EQ(parsed_tcp->payload.size(), payload.size());
}

TEST(PacketBuilder, UdpPacketHasValidChecksums) {
  const Bytes payload = {1, 2, 3, 4};
  const Packet packet = build_udp_packet(
      util::SimTime::from_seconds(0.5), *MacAddress::parse("02:00:00:00:00:01"),
      *MacAddress::parse("02:00:00:00:00:02"), Ipv4Address(10, 0, 0, 1),
      Ipv4Address(8, 8, 8, 8), 5000, 53, payload, 9);
  const auto decoded = decode_packet(packet);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->has_udp());
  EXPECT_EQ(decoded->transport_payload.size(), 4u);
}

}  // namespace
}  // namespace wm::net
