// TLS record framing, handshake messages, cipher length model.
#include <gtest/gtest.h>

#include "wm/tls/cipher.hpp"
#include "wm/tls/handshake.hpp"
#include "wm/tls/record.hpp"

namespace wm::tls {
namespace {

using util::Bytes;
using util::SimTime;

TlsRecord make_record(ContentType type, std::size_t size) {
  TlsRecord record;
  record.content_type = type;
  record.payload = Bytes(size, 0x5a);
  return record;
}

TEST(TlsRecord, SerializeHeaderLayout) {
  const TlsRecord record = make_record(ContentType::kApplicationData, 3);
  util::ByteWriter out;
  serialize_record(record, out);
  EXPECT_EQ(util::to_hex(out.view()), "17030300035a5a5a");
  EXPECT_EQ(record.wire_size(), 8u);
  EXPECT_EQ(record.length(), 3u);
}

TEST(TlsRecordParser, SingleRecord) {
  const Bytes wire = serialize_records({make_record(ContentType::kHandshake, 10)});
  TlsRecordParser parser;
  const auto records = parser.feed(SimTime::from_seconds(1), wire);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].content_type, ContentType::kHandshake);
  EXPECT_EQ(records[0].length, 10u);
  EXPECT_EQ(records[0].stream_offset, 0u);
  EXPECT_EQ(records[0].timestamp, SimTime::from_seconds(1));
  EXPECT_FALSE(parser.desynchronized());
}

TEST(TlsRecordParser, MultipleRecordsOneChunk) {
  const Bytes wire = serialize_records({
      make_record(ContentType::kHandshake, 100),
      make_record(ContentType::kChangeCipherSpec, 1),
      make_record(ContentType::kApplicationData, 2212),
  });
  TlsRecordParser parser;
  const auto records = parser.feed(SimTime::from_seconds(0), wire);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].length, 2212u);
  EXPECT_EQ(records[2].stream_offset, 105u + 6u);
  EXPECT_EQ(parser.records_parsed(), 3u);
}

TEST(TlsRecordParser, RecordSplitAcrossChunks) {
  const Bytes wire = serialize_records({make_record(ContentType::kApplicationData, 1000)});
  TlsRecordParser parser;
  // Feed in 3 pieces, cutting inside the header and inside the body.
  auto first = parser.feed(SimTime::from_seconds(1),
                           util::BytesView(wire).subspan(0, 3));
  EXPECT_TRUE(first.empty());
  auto second = parser.feed(SimTime::from_seconds(2),
                            util::BytesView(wire).subspan(3, 500));
  EXPECT_TRUE(second.empty());
  auto third = parser.feed(SimTime::from_seconds(3),
                           util::BytesView(wire).subspan(503));
  ASSERT_EQ(third.size(), 1u);
  // The record is stamped with the time of the completing chunk.
  EXPECT_EQ(third[0].timestamp, SimTime::from_seconds(3));
  EXPECT_EQ(third[0].length, 1000u);
}

TEST(TlsRecordParser, ScansOnGarbageAndResynchronizesOnChainedRecords) {
  // Garbage puts the parser into the scanning state — but unlike the
  // historical one-way desync latch, a chain of kResyncChain plausible
  // headers re-locks it and the session keeps producing records.
  TlsRecordParser parser;
  const Bytes garbage = {0x99, 0x99, 0x99, 0x99, 0x99, 0x99};
  const auto none = parser.feed(SimTime::from_seconds(0), garbage);
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(parser.desynchronized());

  // One valid record is not enough evidence to re-lock mid-stream...
  const Bytes one = serialize_records({make_record(ContentType::kAlert, 2)});
  EXPECT_TRUE(parser.feed(SimTime::from_seconds(1), one).empty());
  EXPECT_TRUE(parser.desynchronized());

  // ...but once kResyncChain headers chain, every held record pops out.
  const Bytes more = serialize_records({
      make_record(ContentType::kApplicationData, 700),
      make_record(ContentType::kApplicationData, 160),
  });
  const auto records = parser.feed(SimTime::from_seconds(2), more);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(parser.desynchronized());
  EXPECT_EQ(parser.resyncs(), 1u);
  EXPECT_EQ(parser.bytes_skipped(), garbage.size());
  // The first record after the re-lock carries the taint; later ones
  // are clean.
  EXPECT_TRUE(records[0].after_gap);
  EXPECT_EQ(records[0].content_type, ContentType::kAlert);
  EXPECT_FALSE(records[1].after_gap);
  EXPECT_FALSE(records[2].after_gap);
  // Offsets resume on the re-locked boundary, past the skipped bytes.
  EXPECT_EQ(records[0].stream_offset, garbage.size());
}

TEST(TlsRecordParser, RejectsOversizedLength) {
  // length field 0x4801 = 18433 > max ciphertext 18432 (16384+2048).
  Bytes wire = {0x17, 0x03, 0x03, 0x48, 0x01};
  TlsRecordParser parser;
  (void)parser.feed(SimTime::from_seconds(0), wire);
  EXPECT_TRUE(parser.desynchronized());
}

TEST(TlsRecordParser, OnGapDropsPartialRecordAndRelocksAtNextHeader) {
  const Bytes first = serialize_records({make_record(ContentType::kApplicationData, 900)});
  TlsRecordParser parser;
  // Half the record arrives, then the reassembler reports the rest of
  // it (and a bit more) as lost.
  (void)parser.feed(SimTime::from_seconds(0), util::BytesView(first).subspan(0, 400));
  const std::uint64_t lost = (first.size() - 400) + 123;
  parser.on_gap(SimTime::from_seconds(1), lost);
  EXPECT_TRUE(parser.desynchronized());
  EXPECT_EQ(parser.buffered_bytes(), 0u);  // stale partial cleared
  EXPECT_EQ(parser.bytes_skipped(), 400u);

  // The stream resumes with chained records after the hole.
  const Bytes resumed = serialize_records({
      make_record(ContentType::kApplicationData, 333),
      make_record(ContentType::kApplicationData, 444),
      make_record(ContentType::kApplicationData, 555),
  });
  const auto records = parser.feed(SimTime::from_seconds(2), resumed);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_FALSE(parser.desynchronized());
  EXPECT_EQ(parser.resyncs(), 1u);
  EXPECT_TRUE(records[0].after_gap);
  EXPECT_FALSE(records[1].after_gap);
  // Stream offsets stay aligned with the reassembled stream: the gap
  // bytes still occupy their span.
  EXPECT_EQ(records[0].stream_offset, 400u + lost);
  EXPECT_EQ(records[0].length, 333u);
}

TEST(TlsRecordParser, FlushRelocksWithRelaxedChain) {
  // After a gap, fewer than kResyncChain records arrive before the
  // stream ends: feed() holds them, flush() re-locks with the relaxed
  // end-of-stream rule and releases them.
  TlsRecordParser parser;
  parser.on_gap(SimTime::from_seconds(0), 1000);
  const Bytes tail = serialize_records({
      make_record(ContentType::kApplicationData, 210),
      make_record(ContentType::kApplicationData, 320),
  });
  EXPECT_TRUE(parser.feed(SimTime::from_seconds(1), tail).empty());
  EXPECT_TRUE(parser.desynchronized());
  const auto records = parser.flush(SimTime::from_seconds(2));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(parser.desynchronized());
  EXPECT_TRUE(records[0].after_gap);
  EXPECT_EQ(records[0].length, 210u);
  EXPECT_EQ(records[1].length, 320u);
}

TEST(TlsRecordParser, GarbageStreamBufferStaysBounded) {
  // Regression: the old parser kept accumulating consumed_ while
  // desynchronized but left stale bytes in buffer_ forever. The
  // scanning parser must keep its footprint bounded on an endless
  // garbage stream while the consumed/skipped accounting stays exact.
  TlsRecordParser parser;
  Bytes chunk(4096);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    // Pseudo-random bytes with plenty of false content-type candidates.
    chunk[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  std::uint64_t fed = 0;
  for (int i = 0; i < 256; ++i) {
    (void)parser.feed(SimTime::from_nanos(i), chunk);
    fed += chunk.size();
    // A candidate header can legitimately hold back up to a partial
    // resync chain; anything beyond that bound is a leak.
    constexpr std::size_t kBound =
        TlsRecordParser::kResyncChain * (kMaxCiphertextLength + kRecordHeaderSize);
    ASSERT_LE(parser.buffered_bytes(), kBound);
  }
  EXPECT_TRUE(parser.desynchronized());
  EXPECT_EQ(parser.records_parsed(), 0u);
  EXPECT_EQ(parser.bytes_consumed(), fed);
  // Every consumed byte is either skipped or still buffered — nothing
  // unaccounted.
  EXPECT_EQ(parser.bytes_skipped() + parser.buffered_bytes(), fed);
}

TEST(TlsRecordParser, EmptyRecordAllowed) {
  const Bytes wire = serialize_records({make_record(ContentType::kApplicationData, 0)});
  TlsRecordParser parser;
  const auto records = parser.feed(SimTime::from_seconds(0), wire);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].length, 0u);
}

TEST(ContentTypeHelpers, Names) {
  EXPECT_EQ(to_string(ContentType::kApplicationData), "application_data");
  EXPECT_TRUE(is_known_content_type(23));
  EXPECT_FALSE(is_known_content_type(25));
  EXPECT_FALSE(is_known_content_type(19));
}

// --- handshake --------------------------------------------------------

TEST(ClientHello, RoundTripWithSniAndAlpn) {
  ClientHello hello;
  hello.cipher_suites = {0x1301, 0xc02f};
  hello.session_id = Bytes(32, 0x11);
  hello.set_sni("occ-0-2433-2430.1.nflxvideo.net");
  hello.set_alpn({"h2", "http/1.1"});

  const Bytes wire = hello.serialize();
  const auto parsed = ClientHello::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cipher_suites, hello.cipher_suites);
  EXPECT_EQ(parsed->session_id, hello.session_id);
  ASSERT_TRUE(parsed->sni().has_value());
  EXPECT_EQ(*parsed->sni(), "occ-0-2433-2430.1.nflxvideo.net");
}

TEST(ClientHello, SetSniReplacesExisting) {
  ClientHello hello;
  hello.cipher_suites = {0x1301};
  hello.set_sni("first.example");
  hello.set_sni("second.example");
  const auto parsed = ClientHello::parse(hello.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed->sni(), "second.example");
  // Only one server_name extension.
  int count = 0;
  for (const auto& ext : parsed->extensions) {
    if (ext.type == 0) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(ClientHello, NoSniReturnsNullopt) {
  ClientHello hello;
  hello.cipher_suites = {0x1301};
  const auto parsed = ClientHello::parse(hello.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->sni().has_value());
}

TEST(ClientHello, ParseRejectsTruncated) {
  ClientHello hello;
  hello.cipher_suites = {0x1301};
  Bytes wire = hello.serialize();
  wire.resize(wire.size() - 3);
  // The 24-bit length no longer matches.
  EXPECT_FALSE(ClientHello::parse(wire).has_value());
}

TEST(ClientHello, ParseRejectsWrongType) {
  ServerHello server;
  EXPECT_FALSE(ClientHello::parse(server.serialize()).has_value());
}

TEST(ServerHello, RoundTrip) {
  ServerHello hello;
  hello.cipher_suite = 0xc030;
  hello.session_id = Bytes(16, 0xab);
  const auto parsed = ServerHello::parse(hello.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cipher_suite, 0xc030);
  EXPECT_EQ(parsed->session_id.size(), 16u);
}

TEST(OpaqueHandshake, ExactTotalSize) {
  const Bytes msg = opaque_handshake_message(HandshakeType::kCertificate, 4096);
  EXPECT_EQ(msg.size(), 4096u);
  EXPECT_EQ(msg[0], static_cast<std::uint8_t>(HandshakeType::kCertificate));
  EXPECT_THROW(opaque_handshake_message(HandshakeType::kCertificate, 3),
               std::invalid_argument);
}

TEST(ExtractSni, FindsHelloAmongMessages) {
  ClientHello hello;
  hello.cipher_suites = {0x1301};
  hello.set_sni("www.netflix.com");
  // Prepend an unrelated handshake message.
  Bytes payload = opaque_handshake_message(HandshakeType::kHelloRequest, 4);
  const Bytes hello_bytes = hello.serialize();
  payload.insert(payload.end(), hello_bytes.begin(), hello_bytes.end());
  const auto sni = extract_sni(payload);
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, "www.netflix.com");
}

TEST(ExtractSni, NoHelloReturnsNullopt) {
  const Bytes payload = opaque_handshake_message(HandshakeType::kFinished, 20);
  EXPECT_FALSE(extract_sni(payload).has_value());
  EXPECT_FALSE(extract_sni({}).has_value());
}

// --- cipher model ------------------------------------------------------

TEST(CipherModel, Tls12GcmLengths) {
  const CipherModel model(CipherSuite::kTlsEcdheRsaAes256GcmSha384);
  EXPECT_EQ(model.seal_size(0), 24u);
  EXPECT_EQ(model.seal_size(2188), 2212u);  // the paper's type-1 band
  EXPECT_EQ(model.open_size(2212), 2188u);
  EXPECT_EQ(model.overhead(), 24u);
}

TEST(CipherModel, Tls13Lengths) {
  const CipherModel model(CipherSuite::kTlsAes128GcmSha256);
  EXPECT_EQ(model.seal_size(100), 117u);  // +1 type byte +16 tag
  EXPECT_EQ(model.open_size(117), 100u);
}

TEST(CipherModel, Tls13PaddingQuantizes) {
  const CipherModel model(CipherSuite::kTlsAes128GcmSha256, 256);
  EXPECT_EQ(model.seal_size(1), 256u + 16u);
  EXPECT_EQ(model.seal_size(255), 256u + 16u);
  EXPECT_EQ(model.seal_size(256), 512u + 16u);
}

TEST(CipherModel, Chacha20Lengths) {
  const CipherModel model(CipherSuite::kTlsEcdheRsaChacha20Poly1305);
  EXPECT_EQ(model.seal_size(100), 116u);
  EXPECT_EQ(model.open_size(116), 100u);
}

TEST(CipherModel, CbcPadsToBlock) {
  const CipherModel model(CipherSuite::kTlsRsaAes128CbcSha);
  // 0 bytes: IV(16) + pad(0 + 20 mac) -> 32 padded -> 16+32 = 48.
  EXPECT_EQ(model.seal_size(0), 48u);
  // Full block boundary still adds a full pad block.
  const std::size_t at_boundary = model.seal_size(12);  // 12+20=32 -> pad to 48
  EXPECT_EQ(at_boundary, 16u + 48u);
  EXPECT_GE(model.open_size(64), 12u);
}

TEST(CipherModel, SealOpenMonotonic) {
  for (CipherSuite suite :
       {CipherSuite::kTlsEcdheRsaAes256GcmSha384, CipherSuite::kTlsAes128GcmSha256,
        CipherSuite::kTlsEcdheRsaChacha20Poly1305}) {
    const CipherModel model(suite);
    std::size_t prev = 0;
    for (std::size_t size : {1u, 10u, 100u, 1000u, 16384u}) {
      const std::size_t sealed = model.seal_size(size);
      EXPECT_GT(sealed, prev);
      EXPECT_EQ(model.open_size(sealed), size);
      prev = sealed;
    }
  }
}

TEST(CipherSuiteHelpers, Tls13Detection) {
  EXPECT_TRUE(is_tls13_suite(CipherSuite::kTlsAes128GcmSha256));
  EXPECT_FALSE(is_tls13_suite(CipherSuite::kTlsEcdheRsaAes256GcmSha384));
  EXPECT_NE(to_string(CipherSuite::kTlsAes128GcmSha256).find("AES_128"),
            std::string::npos);
}

}  // namespace
}  // namespace wm::tls
