// wm::obs unit coverage plus the tear-free-snapshot hammer: concurrent
// writers increment metrics while a reader snapshots mid-flight, and
// the acquire/release ordering invariants are asserted on every read.
// Built into the TSan job via the "concurrency" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "wm/obs/registry.hpp"
#include "wm/util/json.hpp"

namespace wm::obs {
namespace {

TEST(ObsCounter, ResolveIsIdempotentAndShared) {
  Registry registry;
  Counter* a = registry.counter("engine.packets_in");
  Counter* b = registry.counter("engine.packets_in", Stability::kVolatile);
  EXPECT_EQ(a, b);  // same name -> same counter; first stability wins
  a->add(3);
  b->add(2);
  EXPECT_EQ(a->value(), 5u);
  // First registration declared kStable, so it reports there.
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.stable.at("engine.packets_in"), 5u);
  EXPECT_TRUE(snap.runtime.empty());
}

TEST(ObsCounter, NullSafeHelpers) {
  inc(nullptr);
  inc(nullptr, 42);
  observe(nullptr, 7);  // must not crash
}

TEST(ObsCounter, StabilityRoutesToSections) {
  Registry registry;
  registry.counter("a.stable")->add(1);
  registry.counter("b.sharded", Stability::kSharded)->add(2);
  registry.counter("c.volatile", Stability::kVolatile)->add(3);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.stable.at("a.stable"), 1u);
  EXPECT_EQ(snap.sharded.at("b.sharded"), 2u);
  EXPECT_EQ(snap.runtime.at("c.volatile"), 3u);
  EXPECT_EQ(snap.stable.count("b.sharded"), 0u);
  EXPECT_EQ(snap.stable.count("c.volatile"), 0u);
}

TEST(ObsCounter, RollupSumsMembers) {
  Registry registry;
  // Per-shard members are kSharded; their rollup is declared kStable —
  // the exact shape the engine uses for per-flow quantities.
  registry
      .counter("engine.shard[0].flows.opened", Stability::kSharded,
               "engine.flows.opened")
      ->add(4);
  registry
      .counter("engine.shard[1].flows.opened", Stability::kSharded,
               "engine.flows.opened")
      ->add(6);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.stable.at("engine.flows.opened"), 10u);
  EXPECT_EQ(snap.sharded.at("engine.shard[0].flows.opened"), 4u);
  EXPECT_EQ(snap.sharded.at("engine.shard[1].flows.opened"), 6u);
}

TEST(ObsHistogram, BucketsCountAndSum) {
  Registry registry;
  Histogram* h = registry.histogram("lengths", {100, 200});
  h->observe(50);    // bucket 0 (<= 100)
  h->observe(100);   // bucket 0 (inclusive upper bound)
  h->observe(150);   // bucket 1
  h->observe(9999);  // overflow bucket
  EXPECT_EQ(h->bucket(0), 2u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 1u);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->sum(), 50u + 100u + 150u + 9999u);

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.stable.at("lengths.le_100"), 2u);
  EXPECT_EQ(snap.stable.at("lengths.le_200"), 1u);
  EXPECT_EQ(snap.stable.at("lengths.le_inf"), 1u);
  EXPECT_EQ(snap.stable.at("lengths.count"), 4u);
  EXPECT_EQ(snap.stable.at("lengths.sum"), 50u + 100u + 150u + 9999u);
}

TEST(ObsHistogram, FirstRegistrationFixesBounds) {
  Registry registry;
  Histogram* a = registry.histogram("h", {10, 20});
  Histogram* b = registry.histogram("h", {99});  // bounds ignored
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->upper_bounds(), (std::vector<std::uint64_t>{10, 20}));
}

TEST(ObsHistogram, RollupSumsBucketwise) {
  Registry registry;
  Histogram* s0 = registry.histogram("shard[0].len", {100}, Stability::kSharded,
                                     "len");
  Histogram* s1 = registry.histogram("shard[1].len", {100}, Stability::kSharded,
                                     "len");
  s0->observe(50);
  s1->observe(50);
  s1->observe(500);
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.stable.at("len.le_100"), 2u);
  EXPECT_EQ(snap.stable.at("len.le_inf"), 1u);
  EXPECT_EQ(snap.stable.at("len.count"), 3u);
  EXPECT_EQ(snap.stable.at("len.sum"), 600u);
}

TEST(ObsSnapshot, JsonIsCanonicalAndOrderIndependent) {
  // Two registries fed identically but registered in opposite orders
  // must export byte-identical JSON: map-backed sections sort keys.
  Registry forward;
  forward.counter("alpha")->add(1);
  forward.counter("beta")->add(2);
  Registry backward;
  backward.counter("beta")->add(2);
  backward.counter("alpha")->add(1);
  EXPECT_EQ(forward.snapshot().stable_json(), backward.snapshot().stable_json());
  EXPECT_EQ(forward.snapshot().stable_json(),
            R"({"alpha":1,"beta":2})");
  // Repeated snapshots of an idle registry are byte-identical.
  EXPECT_EQ(forward.snapshot().to_json(), forward.snapshot().to_json());
}

TEST(ObsSnapshot, DeterministicJsonExcludesRuntimeAndTimings) {
  Registry registry;
  registry.counter("stable.x")->add(1);
  registry.counter("sharded.y", Stability::kSharded)->add(2);
  registry.counter("volatile.z", Stability::kVolatile)->add(3);
  registry.timing("stage")->record(123456, 9999);
  const Snapshot snap = registry.snapshot();
  const std::string json = snap.deterministic_json();
  EXPECT_NE(json.find("stable.x"), std::string::npos);
  EXPECT_NE(json.find("sharded.y"), std::string::npos);
  EXPECT_EQ(json.find("volatile.z"), std::string::npos);
  EXPECT_EQ(json.find("stage"), std::string::npos);
  // The full export carries everything.
  const std::string full = snap.to_json();
  EXPECT_NE(full.find("volatile.z"), std::string::npos);
  EXPECT_NE(full.find("stage"), std::string::npos);
}

TEST(ObsSnapshot, TextReportMentionsEverySection) {
  Registry registry;
  registry.counter("pipeline.questions")->add(7);
  registry.counter("engine.batches", Stability::kSharded)->add(3);
  registry.counter("engine.backpressure_waits", Stability::kVolatile)->add(1);
  registry.timing("pipeline.infer")->record(2'000'000, 1'000'000);
  const std::string text = registry.snapshot().to_text();
  EXPECT_NE(text.find("pipeline.questions"), std::string::npos);
  EXPECT_NE(text.find("engine.batches"), std::string::npos);
  EXPECT_NE(text.find("engine.backpressure_waits"), std::string::npos);
  EXPECT_NE(text.find("pipeline.infer"), std::string::npos);
}

TEST(ObsStageTimer, RecordsWallAndCountAndToleratesNull) {
  Registry registry;
  {
    const StageTimer timer(&registry, "stage.a");
    (void)timer;
  }
  {
    const StageTimer timer(&registry, "stage.a");
    (void)timer;
  }
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.timings.at("stage.a").count, 2u);
  // Null registry / null span: constructing and destroying is a no-op.
  {
    const StageTimer null_registry(static_cast<Registry*>(nullptr), "x");
    const StageTimer null_span(static_cast<TimingSpan*>(nullptr));
    (void)null_registry;
    (void)null_span;
  }
}

// --- Tear-free concurrent snapshot hammer ---------------------------
//
// Writers maintain the collector's invariant discipline: increment the
// per-class *parts* first, the *total* last. A reader that loads the
// total (acquire) and then the parts must therefore never observe
// parts_sum < total — the release/acquire pairing makes every part
// increment that happened-before the total increment visible. The same
// argument covers histograms (observe() updates buckets before count;
// snapshots read count before buckets).
//
// Registry::snapshot() reads counters in name order, so the invariant
// holds in snapshots exactly when the total sorts before its parts —
// the convention the engine collector follows ("...client_records" <
// "...type1"). The hammer names its total "hammer.all" accordingly.
TEST(ObsConcurrency, SnapshotsAreTearFreeUnderContention) {
  Registry registry;
  Counter* part_a = registry.counter("hammer.class.a");
  Counter* part_b = registry.counter("hammer.class.b");
  Counter* total = registry.counter("hammer.all");
  Histogram* lengths = registry.histogram("hammer.len", {128, 512, 2048});

  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        if ((i + static_cast<std::uint64_t>(w)) % 2 == 0) {
          part_a->add(1);
        } else {
          part_b->add(1);
        }
        lengths->observe((i * 37 + static_cast<std::uint64_t>(w)) % 4096);
        total->add(1);  // total strictly after its parts
      }
    });
  }

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Raw acquire reads in writer-opposite order...
      const std::uint64_t seen_total = total->value();
      const std::uint64_t seen_parts = part_a->value() + part_b->value();
      EXPECT_GE(seen_parts, seen_total);
      const std::uint64_t seen_count = lengths->count();
      std::uint64_t bucket_events = 0;
      for (std::size_t b = 0; b <= lengths->upper_bounds().size(); ++b) {
        bucket_events += lengths->bucket(b);
      }
      EXPECT_GE(bucket_events, seen_count);
      // ...and full registry snapshots while writers hammer on.
      const Snapshot snap = registry.snapshot();
      EXPECT_GE(snap.stable.at("hammer.class.a") + snap.stable.at("hammer.class.b"),
                snap.stable.at("hammer.all"));
      EXPECT_GE(snap.stable.at("hammer.len.le_128") +
                    snap.stable.at("hammer.len.le_512") +
                    snap.stable.at("hammer.len.le_2048") +
                    snap.stable.at("hammer.len.le_inf"),
                snap.stable.at("hammer.len.count"));
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const Snapshot final_snap = registry.snapshot();
  const std::uint64_t expected = kWriters * kPerWriter;
  EXPECT_EQ(final_snap.stable.at("hammer.all"), expected);
  EXPECT_EQ(final_snap.stable.at("hammer.class.a") +
                final_snap.stable.at("hammer.class.b"),
            expected);
  EXPECT_EQ(final_snap.stable.at("hammer.len.count"), expected);
}

// Registration itself is thread-safe: shards resolve their metric
// pointers concurrently at engine start.
TEST(ObsConcurrency, ConcurrentRegistrationYieldsOneMetricPerName) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> resolved(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      resolved[static_cast<std::size_t>(t)] =
          registry.counter("race.shared", Stability::kSharded, "race.rollup");
      resolved[static_cast<std::size_t>(t)]->add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(resolved[static_cast<std::size_t>(t)], resolved[0]);
  }
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.sharded.at("race.shared"), static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(snap.stable.at("race.rollup"), static_cast<std::uint64_t>(kThreads));
}

}  // namespace
}  // namespace wm::obs
