#include <gtest/gtest.h>

#include <filesystem>

#include "wm/dataset/builder.hpp"
#include "wm/dataset/choice_policy.hpp"
#include "wm/net/pcap.hpp"
#include "wm/net/pcapng.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::dataset {
namespace {

namespace fs = std::filesystem;

TEST(Attributes, StringRoundTrips) {
  for (AgeGroup v : {AgeGroup::kUnder20, AgeGroup::k20To25, AgeGroup::k25To30,
                     AgeGroup::kOver30}) {
    EXPECT_EQ(parse_age_group(to_string(v)), v);
  }
  for (Gender v : {Gender::kMale, Gender::kFemale, Gender::kUndisclosed}) {
    EXPECT_EQ(parse_gender(to_string(v)), v);
  }
  for (PoliticalAlignment v :
       {PoliticalAlignment::kLiberal, PoliticalAlignment::kCentrist,
        PoliticalAlignment::kCommunist, PoliticalAlignment::kUndisclosed}) {
    EXPECT_EQ(parse_political(to_string(v)), v);
  }
  for (StateOfMind v : {StateOfMind::kHappy, StateOfMind::kStressed,
                        StateOfMind::kSad, StateOfMind::kUndisclosed}) {
    EXPECT_EQ(parse_state_of_mind(to_string(v)), v);
  }
  EXPECT_EQ(parse_os("Windows"), sim::OperatingSystem::kWindows);
  EXPECT_EQ(parse_browser("Google-chrome"), sim::Browser::kChrome);
  EXPECT_FALSE(parse_os("BeOS").has_value());
  EXPECT_FALSE(parse_age_group("ancient").has_value());
}

TEST(Attributes, TableIValueSetsMatchPaper) {
  // The paper's Table I enumerates exactly these values.
  EXPECT_EQ(to_string(AgeGroup::kUnder20), "<20");
  EXPECT_EQ(to_string(AgeGroup::kOver30), ">30");
  EXPECT_EQ(to_string(PoliticalAlignment::kCommunist), "Communist");
  EXPECT_EQ(to_string(StateOfMind::kStressed), "Stressed");
  EXPECT_EQ(sim::to_string(sim::Browser::kChrome), "Google-chrome");
  EXPECT_EQ(sim::to_string(sim::TrafficCondition::kNoon), "Noon");
}

TEST(Cohort, SamplesRequestedCountWithIds) {
  util::Rng rng(1);
  const auto cohort = sample_cohort(100, rng);
  ASSERT_EQ(cohort.size(), 100u);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(cohort[i].id, i + 1);
  }
}

TEST(Cohort, CoversAttributeSpace) {
  util::Rng rng(2);
  const auto cohort = sample_cohort(100, rng);
  std::set<std::string> os_seen;
  std::set<std::string> age_seen;
  std::set<std::string> mood_seen;
  for (const Viewer& v : cohort) {
    os_seen.insert(sim::to_string(v.operational.os));
    age_seen.insert(to_string(v.behavioral.age));
    mood_seen.insert(to_string(v.behavioral.mood));
  }
  EXPECT_EQ(os_seen.size(), 3u);
  EXPECT_EQ(age_seen.size(), 4u);
  EXPECT_EQ(mood_seen.size(), 4u);
}

TEST(ChoicePolicy, ProbabilityBoundedAndAttributeSensitive) {
  BehavioralAttributes young_stressed;
  young_stressed.age = AgeGroup::kUnder20;
  young_stressed.mood = StateOfMind::kStressed;
  BehavioralAttributes old_happy;
  old_happy.age = AgeGroup::kOver30;
  old_happy.mood = StateOfMind::kHappy;

  for (std::size_t q = 1; q <= 12; ++q) {
    const double p_young = default_probability(young_stressed, q);
    const double p_old = default_probability(old_happy, q);
    EXPECT_GE(p_young, 0.05);
    EXPECT_LE(p_old, 0.95);
    EXPECT_LT(p_young, p_old);  // stress + youth -> more exploratory
  }
  // Late questions shift everyone toward non-default.
  EXPECT_LT(default_probability(old_happy, 10), default_probability(old_happy, 2));
}

TEST(ChoicePolicy, DrawsEnoughChoicesForGraph) {
  const story::StoryGraph graph = story::make_bandersnatch();
  util::Rng rng(3);
  BehavioralAttributes behavioral;
  const auto choices = draw_choices(graph, behavioral, rng);
  EXPECT_GE(choices.size(), graph.max_questions());
}

TEST(GroundTruthJson, RoundTrip) {
  const story::StoryGraph graph = story::make_bandersnatch();
  sim::SessionGroundTruth truth;
  truth.reached_ending = true;
  truth.path = {graph.start()};
  sim::QuestionOutcome q;
  q.index = 1;
  q.segment = graph.choice_segments()[0];
  q.prompt = "Frosties or Sugar Puffs?";
  q.choice = story::Choice::kNonDefault;
  q.question_time = util::SimTime::from_seconds(17.25);
  q.decision_time = util::SimTime::from_seconds(20.5);
  truth.questions.push_back(q);

  Viewer viewer;
  viewer.id = 7;
  const std::string json = ground_truth_to_json(viewer, truth, graph);
  const sim::SessionGroundTruth loaded = ground_truth_from_json(json);
  EXPECT_TRUE(loaded.reached_ending);
  ASSERT_EQ(loaded.questions.size(), 1u);
  EXPECT_EQ(loaded.questions[0].prompt, "Frosties or Sugar Puffs?");
  EXPECT_EQ(loaded.questions[0].choice, story::Choice::kNonDefault);
  EXPECT_NEAR(loaded.questions[0].question_time.to_seconds(), 17.25, 1e-6);
  EXPECT_NEAR(loaded.questions[0].decision_time.to_seconds(), 20.5, 1e-6);
}

TEST(DatasetBuilder, GeneratesDeterministicDataPoints) {
  const story::StoryGraph graph = story::make_bandersnatch();
  DatasetConfig config;
  config.viewer_count = 3;
  config.seed = 99;
  const auto points_a = generate_dataset(graph, config);
  const auto points_b = generate_dataset(graph, config);
  ASSERT_EQ(points_a.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(points_a[i].viewer.id, points_b[i].viewer.id);
    EXPECT_EQ(points_a[i].session.capture.packets.size(),
              points_b[i].session.capture.packets.size());
    EXPECT_EQ(points_a[i].session.truth.choices(),
              points_b[i].session.truth.choices());
  }
}

TEST(DatasetBuilder, ViewersDiffer) {
  const story::StoryGraph graph = story::make_bandersnatch();
  DatasetConfig config;
  config.viewer_count = 4;
  config.seed = 100;
  const auto points = generate_dataset(graph, config);
  // At least two viewers made different choice sequences.
  bool differ = false;
  for (std::size_t i = 1; i < points.size(); ++i) {
    differ |= points[i].session.truth.choices() !=
              points[0].session.truth.choices();
  }
  EXPECT_TRUE(differ);
}

TEST(DatasetBuilder, WriteAndReadBack) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const fs::path dir = fs::temp_directory_path() / "wm_test_dataset";
  fs::remove_all(dir);

  DatasetConfig config;
  config.viewer_count = 2;
  config.seed = 123;
  const std::size_t written = write_dataset(dir, graph, config);
  EXPECT_EQ(written, 2u);

  EXPECT_TRUE(fs::exists(dir / "manifest.json"));
  EXPECT_TRUE(fs::exists(dir / "viewers.csv"));

  const auto index = read_manifest(dir);
  ASSERT_EQ(index.size(), 2u);
  for (const DatasetIndexEntry& entry : index) {
    EXPECT_TRUE(fs::exists(entry.trace_file)) << entry.trace_file;
    EXPECT_TRUE(fs::exists(entry.truth_file)) << entry.truth_file;

    // Traces load as valid pcap with plausible packet counts.
    const auto packets = net::read_pcap(entry.trace_file);
    EXPECT_GT(packets.size(), 100u);

    const auto truth = read_ground_truth(entry.truth_file);
    EXPECT_FALSE(truth.questions.empty());
  }

  // Attributes in the manifest match a regeneration of the cohort.
  util::Rng rng(config.seed);
  const auto cohort = sample_cohort(config.viewer_count, rng);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(index[i].viewer.operational, cohort[i].operational);
    EXPECT_EQ(index[i].viewer.behavioral, cohort[i].behavioral);
  }
  fs::remove_all(dir);
}

TEST(DatasetBuilder, PcapngFormatRoundTrips) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const fs::path dir = fs::temp_directory_path() / "wm_test_dataset_ng";
  fs::remove_all(dir);

  DatasetConfig config;
  config.viewer_count = 1;
  config.seed = 321;
  config.capture_format = CaptureFormat::kPcapng;
  ASSERT_EQ(write_dataset(dir, graph, config), 1u);

  const auto index = read_manifest(dir);
  ASSERT_EQ(index.size(), 1u);
  EXPECT_EQ(index[0].trace_file.extension(), ".pcapng");
  // read_any_capture dispatches on the SHB magic.
  const auto packets = net::read_any_capture(index[0].trace_file);
  EXPECT_GT(packets.size(), 100u);
  fs::remove_all(dir);
}

TEST(DatasetBuilder, ManifestErrorsSurface) {
  EXPECT_THROW(read_manifest("/nonexistent/path"), std::runtime_error);
  EXPECT_THROW(read_ground_truth("/nonexistent/truth.json"), std::runtime_error);
}

}  // namespace
}  // namespace wm::dataset
