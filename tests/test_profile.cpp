// Traffic-profile calibration: the sealed record-length bands must
// reproduce Fig. 2 of the paper for the two calibrated conditions, and
// stay disjoint (type-1 / type-2 / others) for EVERY operational
// combination — the paper's robustness claim.
#include <gtest/gtest.h>

#include "wm/sim/profile.hpp"

namespace wm::sim {
namespace {

OperationalConditions linux_firefox_wired() {
  OperationalConditions c;
  c.os = OperatingSystem::kLinux;
  c.platform = Platform::kDesktop;
  c.browser = Browser::kFirefox;
  c.connection = ConnectionType::kWired;
  c.traffic = TrafficCondition::kNoon;
  return c;
}

TEST(Profile, Fig2LinuxFirefoxBands) {
  const TrafficProfile profile = make_traffic_profile(linux_firefox_wired());
  const auto [t1_lo, t1_hi] = profile.sealed_band(ClientMessageKind::kType1Json);
  EXPECT_EQ(t1_lo, 2211u);
  EXPECT_EQ(t1_hi, 2213u);
  const auto [t2_lo, t2_hi] = profile.sealed_band(ClientMessageKind::kType2Json);
  EXPECT_EQ(t2_lo, 2992u);
  EXPECT_EQ(t2_hi, 3017u);
}

TEST(Profile, Fig2WindowsFirefoxBands) {
  OperationalConditions c = linux_firefox_wired();
  c.os = OperatingSystem::kWindows;
  const TrafficProfile profile = make_traffic_profile(c);
  const auto [t1_lo, t1_hi] = profile.sealed_band(ClientMessageKind::kType1Json);
  EXPECT_EQ(t1_lo, 2341u);
  EXPECT_EQ(t1_hi, 2343u);
  const auto [t2_lo, t2_hi] = profile.sealed_band(ClientMessageKind::kType2Json);
  EXPECT_EQ(t2_lo, 3118u);
  EXPECT_EQ(t2_hi, 3147u);
}

TEST(Profile, AllOperationalConditionsEnumerated) {
  const auto all = all_operational_conditions();
  EXPECT_EQ(all.size(), 72u);  // 3 x 2 x 3 x 2 x 2
  // No duplicates.
  std::set<std::string> seen;
  for (const auto& c : all) {
    seen.insert(c.to_string());
  }
  EXPECT_EQ(seen.size(), all.size());
}

TEST(Profile, ConditionStringMatchesPaperStyle) {
  const std::string text = linux_firefox_wired().to_string();
  EXPECT_EQ(text, "(Desktop, Firefox, Ethernet, Linux, Noon)");
}

/// Parameterized over all 72 operational combinations.
class ProfileProperty
    : public ::testing::TestWithParam<OperationalConditions> {};

TEST_P(ProfileProperty, JsonBandsDisjointFromEachOther) {
  const TrafficProfile profile = make_traffic_profile(GetParam());
  const auto [t1_lo, t1_hi] = profile.sealed_band(ClientMessageKind::kType1Json);
  const auto [t2_lo, t2_hi] = profile.sealed_band(ClientMessageKind::kType2Json);
  EXPECT_LT(t1_hi, t2_lo) << GetParam().to_string();
  (void)t1_lo;
  (void)t2_hi;
}

TEST_P(ProfileProperty, OthersAvoidJsonBands) {
  const TrafficProfile profile = make_traffic_profile(GetParam());
  const auto [t1_lo, t1_hi] = profile.sealed_band(ClientMessageKind::kType1Json);
  const auto [t2_lo, t2_hi] = profile.sealed_band(ClientMessageKind::kType2Json);

  const auto [req_lo, req_hi] =
      profile.sealed_band(ClientMessageKind::kChunkRequest);
  EXPECT_LT(req_hi, t1_lo) << GetParam().to_string();
  (void)req_lo;

  const auto [tel_lo, tel_hi] =
      profile.sealed_band(ClientMessageKind::kTelemetry);
  EXPECT_GT(tel_lo, t1_hi) << GetParam().to_string();
  EXPECT_LT(tel_hi, t2_lo) << GetParam().to_string();

  const auto [log_lo, log_hi] = profile.sealed_band(ClientMessageKind::kLogBatch);
  EXPECT_GT(log_lo, t2_hi) << GetParam().to_string();
  (void)log_hi;
}

TEST_P(ProfileProperty, SamplesStayInsideBands) {
  const TrafficProfile profile = make_traffic_profile(GetParam());
  util::Rng rng(99);
  const tls::CipherModel cipher(profile.tls.suite, profile.tls.tls13_pad_to);
  for (ClientMessageKind kind :
       {ClientMessageKind::kType1Json, ClientMessageKind::kType2Json,
        ClientMessageKind::kChunkRequest, ClientMessageKind::kTelemetry,
        ClientMessageKind::kLogBatch}) {
    const auto [lo, hi] = profile.sealed_band(kind);
    for (int i = 0; i < 200; ++i) {
      const std::size_t sealed = cipher.seal_size(profile.sample_plaintext(kind, rng));
      EXPECT_GE(sealed, lo);
      EXPECT_LE(sealed, hi);
    }
  }
}

TEST_P(ProfileProperty, DeterministicForConditions) {
  const TrafficProfile a = make_traffic_profile(GetParam());
  const TrafficProfile b = make_traffic_profile(GetParam());
  EXPECT_EQ(a.type1_plaintext.base, b.type1_plaintext.base);
  EXPECT_EQ(a.type2_plaintext.base, b.type2_plaintext.base);
  EXPECT_EQ(a.tls.suite, b.tls.suite);
  EXPECT_EQ(a.mss, b.mss);
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, ProfileProperty,
    ::testing::ValuesIn(all_operational_conditions()),
    [](const ::testing::TestParamInfo<OperationalConditions>& info) {
      std::string name = to_string(info.param.os) + to_string(info.param.platform) +
                         to_string(info.param.traffic) +
                         to_string(info.param.connection) +
                         to_string(info.param.browser);
      std::erase_if(name, [](char c) { return !std::isalnum(
                                           static_cast<unsigned char>(c)); });
      return name;
    });

TEST(Profile, OsShiftsBands) {
  OperationalConditions linux_cond = linux_firefox_wired();
  OperationalConditions windows_cond = linux_cond;
  windows_cond.os = OperatingSystem::kWindows;
  OperationalConditions mac_cond = linux_cond;
  mac_cond.os = OperatingSystem::kMac;

  const auto l = make_traffic_profile(linux_cond).sealed_band(
      ClientMessageKind::kType1Json);
  const auto w = make_traffic_profile(windows_cond)
                     .sealed_band(ClientMessageKind::kType1Json);
  const auto m =
      make_traffic_profile(mac_cond).sealed_band(ClientMessageKind::kType1Json);
  EXPECT_NE(l.first, w.first);
  EXPECT_NE(l.first, m.first);
  EXPECT_NE(w.first, m.first);
}

TEST(Profile, BrowserChangesTlsStack) {
  OperationalConditions firefox = linux_firefox_wired();
  OperationalConditions chrome = firefox;
  chrome.browser = Browser::kChrome;
  const TrafficProfile f = make_traffic_profile(firefox);
  const TrafficProfile c = make_traffic_profile(chrome);
  EXPECT_FALSE(tls::is_tls13_suite(f.tls.suite));
  EXPECT_TRUE(tls::is_tls13_suite(c.tls.suite));
}

TEST(Profile, ConnectionAffectsMss) {
  OperationalConditions wired = linux_firefox_wired();
  OperationalConditions wireless = wired;
  wireless.connection = ConnectionType::kWireless;
  EXPECT_GT(make_traffic_profile(wired).mss,
            make_traffic_profile(wireless).mss);
}

TEST(Profile, SizeBandSampling) {
  SizeBand band{100, 5};
  util::Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 300; ++i) {
    const std::size_t v = band.sample(rng);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 105u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(band.max(), 105u);
}

}  // namespace
}  // namespace wm::sim
