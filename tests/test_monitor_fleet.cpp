// MonitorFleet: the viewer-sharded monitor against its single-threaded
// reference. The headline property is the differential — for any shard
// count and source count, per-viewer emission streams (choices,
// question times, confidence, evictions) are identical to one
// ContinuousMonitor fed the same capture, clean and under drop/jitter
// impairments. Plus: global-order delivery through OrderingCollector,
// rollup metric accounting, viewer-hash routing invariants, and a
// tiny-ring stress leg (backpressure + shutdown-while-feeding + the
// abort-without-finish destructor path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "wm/core/classifier.hpp"
#include "wm/monitor/fleet.hpp"
#include "wm/monitor/live_source.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/monitor/workload.hpp"
#include "wm/net/flow.hpp"
#include "wm/obs/registry.hpp"
#include "wm/sim/impairments.hpp"
#include "wm/util/rng.hpp"

namespace wm::monitor {
namespace {

/// Thread-safe collecting sink (the fleet delivers from N shard
/// threads). Per-viewer delivery is serial by contract, so one mutex
/// around the containers is all the synchronization needed.
struct FleetSink final : engine::EventSink {
  struct Emitted {
    core::InferredQuestion question;
    std::int64_t at_nanos = 0;
    bool final = false;
  };
  struct Eviction {
    engine::ViewerEvictedEvent::Reason reason{};
    std::int64_t at_nanos = 0;
    std::size_t questions_emitted = 0;
  };

  mutable std::mutex mu;
  std::map<std::string, std::vector<Emitted>> choices;
  std::map<std::string, std::size_t> opened;
  std::map<std::string, std::vector<Eviction>> evictions;
  std::map<std::string, std::size_t> gaps;
  /// The event-time key of every callback in delivery order — the
  /// sequence OrderingCollector promises is non-decreasing (except
  /// shutdown-flush evictions, whose `at` is backdated by contract).
  struct Delivery {
    std::int64_t at_nanos = 0;
    bool shutdown_eviction = false;
  };
  std::vector<Delivery> delivery_times;

  void on_question_opened(const engine::QuestionOpenedEvent& event) override {
    const std::lock_guard<std::mutex> lock(mu);
    ++opened[std::string(event.client)];
    delivery_times.push_back({event.question.question_time.nanos(), false});
  }
  void on_choice_inferred(const engine::ChoiceInferredEvent& event) override {
    const std::lock_guard<std::mutex> lock(mu);
    choices[std::string(event.client)].push_back(
        Emitted{event.question, event.at.nanos(), event.final});
    delivery_times.push_back({event.at.nanos(), false});
  }
  void on_viewer_evicted(const engine::ViewerEvictedEvent& event) override {
    const std::lock_guard<std::mutex> lock(mu);
    evictions[std::string(event.client)].push_back(
        Eviction{event.reason, event.at.nanos(), event.questions_emitted});
    delivery_times.push_back(
        {event.at.nanos(),
         event.reason == engine::ViewerEvictedEvent::Reason::kShutdown});
  }
  void on_gap_observed(const engine::GapObservedEvent& event) override {
    const std::lock_guard<std::mutex> lock(mu);
    ++gaps[std::string(event.client)];
    delivery_times.push_back({event.gap.at.nanos(), false});
  }
};

WorkloadConfig small_fleet_workload() {
  WorkloadConfig workload;
  workload.sessions = 12;
  workload.concurrency = 4;
  workload.questions_per_session = 3;
  return workload;
}

std::vector<net::Packet> materialize(const WorkloadConfig& workload) {
  SyntheticFleetSource source(workload);
  std::vector<net::Packet> packets;
  packets.reserve(source.packets_total());
  while (auto packet = source.next()) packets.push_back(std::move(*packet));
  return packets;
}

/// Differential monitor tuning: idle timeout short enough that early
/// sessions age out mid-capture, so the comparison covers idle
/// evictions and not just the shutdown flush.
MonitorConfig diff_config() {
  MonitorConfig config;
  config.evidence_window = util::Duration::seconds(5);
  config.viewer_idle_timeout = util::Duration::seconds(10);
  config.flow_idle_timeout = util::Duration::seconds(8);
  return config;
}

/// Split a time-ordered capture into `sources` time-ordered streams,
/// keeping every viewer inside one stream (the shutdown contract the
/// per-viewer ordering guarantee is specified against).
std::vector<std::vector<net::Packet>> split_by_viewer(
    const std::vector<net::Packet>& packets, std::size_t sources) {
  std::vector<std::vector<net::Packet>> parts(sources);
  for (const net::Packet& packet : packets) {
    const auto hash = net::viewer_shard_hash(packet);
    const std::size_t slot = hash ? static_cast<std::size_t>(*hash % sources) : 0;
    parts[slot].push_back(packet);
  }
  return parts;
}

struct ReferenceRun {
  FleetSink sink;
  MonitorStats stats;
};

void run_reference(const core::RecordClassifier& classifier,
                   const std::vector<net::Packet>& packets,
                   ReferenceRun& out) {
  ContinuousMonitor monitor(classifier, diff_config(), &out.sink);
  for (const net::Packet& packet : packets) monitor.feed(packet);
  out.stats = monitor.finish();
}

struct FleetRun {
  FleetSink sink;
  FleetStats stats;
};

void run_fleet(const core::RecordClassifier& classifier,
               const std::vector<net::Packet>& packets, std::size_t shards,
               std::size_t sources, FleetRun& out,
               bool global_order = false) {
  FleetConfig config;
  config.shards = shards;
  config.sources = sources;
  // Rings sized past the whole capture and a merge wait no real
  // scheduling hiccup can reach: the run is deterministic (no
  // backpressure parks, no merge deferrals) so the differential is
  // exact, not statistical.
  config.ring_capacity = packets.size() + 1;
  config.merge_wait = util::Duration::seconds(30);
  config.global_order = global_order;
  config.monitor = diff_config();

  MonitorFleet fleet(classifier, config, &out.sink);
  const auto parts = split_by_viewer(packets, sources);
  std::vector<engine::VectorSource> vector_sources;
  vector_sources.reserve(parts.size());
  for (const auto& part : parts) vector_sources.emplace_back(&part);
  for (auto& source : vector_sources) fleet.attach(source);
  out.stats = fleet.finish();
  EXPECT_EQ(out.stats.merge_deferrals, 0u)
      << shards << " shards x " << sources << " sources";
}

void expect_equal_streams(const FleetSink& fleet, const FleetSink& reference,
                          const std::string& label) {
  ASSERT_EQ(fleet.opened, reference.opened) << label;
  ASSERT_EQ(fleet.gaps, reference.gaps) << label;

  std::set<std::string> fleet_clients;
  for (const auto& [client, emitted] : fleet.choices)
    fleet_clients.insert(client), (void)emitted;
  std::set<std::string> reference_clients;
  for (const auto& [client, emitted] : reference.choices)
    reference_clients.insert(client), (void)emitted;
  ASSERT_EQ(fleet_clients, reference_clients) << label;

  for (const auto& [client, expected] : reference.choices) {
    const auto& got = fleet.choices.at(client);
    ASSERT_EQ(got.size(), expected.size()) << label << " client " << client;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].question.choice, expected[i].question.choice)
          << label << " client " << client << " question " << i;
      EXPECT_EQ(got[i].question.question_time.nanos(),
                expected[i].question.question_time.nanos())
          << label << " client " << client << " question " << i;
      EXPECT_NEAR(got[i].question.confidence, expected[i].question.confidence,
                  1e-12)
          << label << " client " << client << " question " << i;
      EXPECT_EQ(got[i].at_nanos, expected[i].at_nanos)
          << label << " client " << client << " question " << i;
      EXPECT_EQ(got[i].final, expected[i].final)
          << label << " client " << client << " question " << i;
    }
  }

  ASSERT_EQ(fleet.evictions.size(), reference.evictions.size()) << label;
  for (const auto& [client, expected] : reference.evictions) {
    const auto it = fleet.evictions.find(client);
    ASSERT_NE(it, fleet.evictions.end()) << label << " client " << client;
    const auto& got = it->second;
    ASSERT_EQ(got.size(), expected.size()) << label << " client " << client;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].reason, expected[i].reason)
          << label << " client " << client << " eviction " << i;
      EXPECT_EQ(got[i].at_nanos, expected[i].at_nanos)
          << label << " client " << client << " eviction " << i;
      EXPECT_EQ(got[i].questions_emitted, expected[i].questions_emitted)
          << label << " client " << client << " eviction " << i;
    }
  }
}

void expect_equal_totals(const FleetStats& fleet, const MonitorStats& reference,
                         const std::string& label) {
  EXPECT_EQ(fleet.totals.packets, reference.packets) << label;
  EXPECT_EQ(fleet.totals.viewers_opened, reference.viewers_opened) << label;
  EXPECT_EQ(fleet.totals.viewers_evicted_idle, reference.viewers_evicted_idle)
      << label;
  EXPECT_EQ(fleet.totals.viewers_shed, reference.viewers_shed) << label;
  EXPECT_EQ(fleet.totals.questions_opened, reference.questions_opened) << label;
  EXPECT_EQ(fleet.totals.choices_inferred, reference.choices_inferred) << label;
  EXPECT_EQ(fleet.totals.overrides, reference.overrides) << label;
  EXPECT_EQ(fleet.totals.gaps_observed, reference.gaps_observed) << label;
}

/// The full differential matrix on one capture: shard counts x source
/// counts, every per-viewer stream equal to the single monitor's.
void run_matrix(const std::vector<net::Packet>& packets,
                const core::RecordClassifier& classifier,
                const std::string& tag) {
  ReferenceRun reference;
  run_reference(classifier, packets, reference);
  ASSERT_FALSE(reference.sink.choices.empty()) << tag;
  ASSERT_GT(reference.stats.viewers_evicted_idle, 0u)
      << tag << ": tuning should cover idle eviction, not just shutdown";

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const std::size_t sources : {1u, 4u}) {
      const std::string label = tag + " shards=" + std::to_string(shards) +
                                " sources=" + std::to_string(sources);
      FleetRun fleet;
      run_fleet(classifier, packets, shards, sources, fleet);
      expect_equal_streams(fleet.sink, reference.sink, label);
      expect_equal_totals(fleet.stats, reference.stats, label);
      EXPECT_EQ(fleet.stats.packets, packets.size()) << label;
    }
  }
}

TEST(MonitorFleet, DifferentialMatchesSingleMonitorAcrossShardMatrix) {
  const WorkloadConfig workload = small_fleet_workload();
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  run_matrix(materialize(workload), classifier, "clean");
}

TEST(MonitorFleet, DifferentialHoldsUnderDropAndJitter) {
  const WorkloadConfig workload = small_fleet_workload();
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  const std::vector<net::Packet> clean = materialize(workload);

  // Impair the capture ONCE, before partitioning: reference and fleet
  // see the same damaged packets, so equality must survive capture loss
  // and local reordering (jitter_order re-sorts, keeping the global
  // time order sources promise).
  util::Rng rng(20260807);
  const std::vector<net::Packet> dropped = sim::drop_packets(clean, 0.01, rng);
  const std::vector<net::Packet> impaired =
      sim::jitter_order(dropped, 0.005, rng);
  ASSERT_LT(impaired.size(), clean.size());
  run_matrix(impaired, classifier, "impaired");
}

TEST(MonitorFleet, GlobalOrderDeliveryIsTimeSorted) {
  const WorkloadConfig workload = small_fleet_workload();
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  const std::vector<net::Packet> packets = materialize(workload);

  ReferenceRun reference;
  run_reference(classifier, packets, reference);

  FleetRun fleet;
  run_fleet(classifier, packets, /*shards=*/4, /*sources=*/4, fleet,
            /*global_order=*/true);

  // Same per-viewer streams as ever...
  expect_equal_streams(fleet.sink, reference.sink, "global-order");
  // ...but delivery is additionally a single global time-sorted
  // sequence across viewers and shards. Shutdown-flush evictions are
  // exempt (their `at` is the viewer's last activity, backdated by
  // contract); they arrive last, sorted among themselves.
  ASSERT_FALSE(fleet.sink.delivery_times.empty());
  std::vector<std::int64_t> ordered;
  std::vector<std::int64_t> shutdown_flush;
  bool flush_started = false;
  for (const auto& delivery : fleet.sink.delivery_times) {
    if (delivery.shutdown_eviction) {
      flush_started = true;
      shutdown_flush.push_back(delivery.at_nanos);
    } else {
      // Once the shutdown flush begins, only its own backlog remains
      // behind already-released events; everything else stays sorted.
      if (!flush_started) ordered.push_back(delivery.at_nanos);
    }
  }
  ASSERT_FALSE(ordered.empty());
  ASSERT_FALSE(shutdown_flush.empty());
  EXPECT_TRUE(std::is_sorted(ordered.begin(), ordered.end()));
  EXPECT_TRUE(std::is_sorted(shutdown_flush.begin(), shutdown_flush.end()));
  EXPECT_EQ(fleet.sink.delivery_times.size(),
            reference.sink.delivery_times.size());
}

TEST(MonitorFleet, RollupCountersMatchShardSumAndSingleMonitor) {
  const WorkloadConfig workload = small_fleet_workload();
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  const std::vector<net::Packet> packets = materialize(workload);

  obs::Registry registry;
  FleetConfig config;
  config.shards = 4;
  config.ring_capacity = packets.size() + 1;
  config.monitor = diff_config();
  config.monitor.metrics = &registry;

  MonitorFleet fleet(classifier, config);
  engine::VectorSource source(&packets);
  EXPECT_EQ(fleet.consume(source), packets.size());
  const FleetStats stats = fleet.finish();

  const obs::Snapshot snap = registry.snapshot();
  // Rollups keep the flat standalone names and equal the aggregate.
  EXPECT_EQ(snap.stable.at("monitor.emit.choices"),
            stats.totals.choices_inferred);
  EXPECT_EQ(snap.stable.at("monitor.emit.questions"),
            stats.totals.questions_opened);
  EXPECT_EQ(snap.stable.at("monitor.viewers.opened"),
            stats.totals.viewers_opened);
  EXPECT_EQ(snap.sharded.at("monitor.viewers.shed"),
            stats.totals.viewers_shed);
  EXPECT_EQ(snap.sharded.at("monitor.mem.ceiling_violations"),
            stats.totals.ceiling_violations);

  // Every rollup is exactly the sum of its per-shard counters.
  for (const char* suffix : {".emit.choices", ".emit.questions",
                             ".viewers.opened", ".viewers.evicted_idle"}) {
    std::uint64_t shard_sum = 0;
    for (std::size_t i = 0; i < config.shards; ++i) {
      shard_sum += snap.sharded.at("monitor.shard[" + std::to_string(i) + "]" +
                                   std::string(suffix));
    }
    EXPECT_EQ(snap.stable.at("monitor" + std::string(suffix)), shard_sum)
        << suffix;
  }

  // And the rollup equals what a standalone monitor registers flat.
  obs::Registry single_registry;
  MonitorConfig single_config = diff_config();
  single_config.metrics = &single_registry;
  ContinuousMonitor monitor(classifier, single_config);
  engine::VectorSource single_source(&packets);
  monitor.consume(single_source);
  monitor.finish();
  const obs::Snapshot single_snap = single_registry.snapshot();
  EXPECT_EQ(snap.stable.at("monitor.emit.choices"),
            single_snap.stable.at("monitor.emit.choices"));
  EXPECT_EQ(snap.stable.at("monitor.viewers.opened"),
            single_snap.stable.at("monitor.viewers.opened"));
}

TEST(MonitorFleet, ViewerHashPinsEverySessionPacketToOneShard) {
  WorkloadConfig workload = small_fleet_workload();
  workload.sessions = 1;
  const std::vector<net::Packet> one_session = materialize(workload);
  ASSERT_FALSE(one_session.empty());
  const auto first = net::viewer_shard_hash(one_session.front());
  ASSERT_TRUE(first.has_value());
  // Both directions of every flow in the session hash to the viewer.
  for (const net::Packet& packet : one_session) {
    const auto hash = net::viewer_shard_hash(packet);
    ASSERT_TRUE(hash.has_value());
    EXPECT_EQ(*hash, *first);
  }

  // Across a fleet of distinct viewers the hash spreads over shards.
  workload.sessions = 32;
  std::set<std::uint64_t> buckets;
  for (const net::Packet& packet : materialize(workload)) {
    const auto hash = net::viewer_shard_hash(packet);
    ASSERT_TRUE(hash.has_value());
    buckets.insert(*hash % 8);
  }
  EXPECT_GT(buckets.size(), 2u);
}

TEST(MonitorFleet, StressTinyRingsBackpressureAndShutdownWhileFeeding) {
  WorkloadConfig workload;
  workload.sessions = 48;
  workload.concurrency = 12;
  workload.questions_per_session = 2;
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  const std::vector<net::Packet> packets = materialize(workload);
  const auto parts = split_by_viewer(packets, 4);

  FleetSink sink;
  FleetConfig config;
  config.shards = 4;
  config.sources = 4;
  config.ring_capacity = 8;  // force pump parks
  config.batch = 4;
  config.merge_wait = util::Duration::millis(1);
  config.monitor = diff_config();

  MonitorFleet fleet(classifier, config, &sink);
  std::vector<std::unique_ptr<InjectableTap>> taps;
  for (std::size_t i = 0; i < 4; ++i)
    taps.push_back(std::make_unique<InjectableTap>(/*capacity=*/8));
  for (auto& tap : taps) fleet.attach(*tap);

  // Producers inject through bounded taps while the main thread is
  // already inside finish(): shutdown races live feeding, and finish()
  // must block until every tap closes, then account for every packet.
  std::vector<std::thread> producers;
  producers.reserve(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    producers.emplace_back([&taps, &parts, i] {
      for (const net::Packet& packet : parts[i]) {
        net::Packet copy = packet;
        EXPECT_TRUE(taps[i]->inject(std::move(copy)));
      }
      taps[i]->close();
    });
  }
  const FleetStats stats = fleet.finish();
  for (std::thread& producer : producers) producer.join();

  EXPECT_EQ(stats.packets, packets.size());
  EXPECT_EQ(stats.totals.packets, packets.size());
  EXPECT_EQ(stats.totals.viewers_opened, workload.sessions);
  // 8-slot rings against thousands of packets: the pumps parked.
  EXPECT_GT(stats.backpressure_waits, 0u);
  // Deferrals are allowed here (1ms merge_wait, racing producers); the
  // per-viewer serial guarantee still holds — spot-check every viewer
  // got a full answer stream despite the chaos.
  std::size_t total_choices = 0;
  for (const auto& [client, emitted] : sink.choices)
    total_choices += emitted.size(), (void)client;
  EXPECT_EQ(total_choices, stats.totals.choices_inferred);
  EXPECT_EQ(stats.totals.choices_inferred,
            workload.sessions * workload.questions_per_session);
}

TEST(MonitorFleet, DestructionWithoutFinishDrainsAndJoins) {
  const WorkloadConfig workload = small_fleet_workload();
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  const std::vector<net::Packet> packets = materialize(workload);

  FleetSink sink;
  // Sources must outlive the fleet (pumps read them until end-of-
  // stream), so they are declared outside the fleet's scope.
  const auto parts = split_by_viewer(packets, 2);
  engine::VectorSource a(&parts[0]);
  engine::VectorSource b(&parts[1]);
  {
    FleetConfig config;
    config.shards = 2;
    config.sources = 2;
    config.ring_capacity = 16;
    config.monitor = diff_config();
    MonitorFleet fleet(classifier, config, &sink);
    fleet.attach(a);
    fleet.attach(b);
    // No finish(): the destructor must join pumps and workers cleanly.
  }
  // The abort path skips the shutdown flush, so no kShutdown evictions;
  // whatever WAS delivered before teardown is still well-formed.
  for (const auto& [client, events] : sink.evictions) {
    for (const auto& eviction : events) {
      EXPECT_NE(eviction.reason,
                engine::ViewerEvictedEvent::Reason::kShutdown)
          << client;
    }
  }
}

TEST(MonitorFleet, SourceSlotOveruseThrows) {
  const WorkloadConfig workload = small_fleet_workload();
  core::IntervalClassifier classifier;
  classifier.fit(workload_calibration(workload));
  const std::vector<net::Packet> packets = materialize(workload);

  FleetConfig config;
  config.sources = 1;
  MonitorFleet fleet(classifier, config);
  engine::VectorSource first(&packets);
  fleet.consume(first);
  engine::VectorSource second(&packets);
  EXPECT_THROW(fleet.attach(second), std::logic_error);
  fleet.finish();
  engine::VectorSource third(&packets);
  EXPECT_THROW(fleet.attach(third), std::logic_error);
}

}  // namespace
}  // namespace wm::monitor
