// Differential suite: across seeds × capture impairments, the sharded
// streaming engine must reproduce the batch pipeline's decode exactly
// for every shard count — and the wm::obs *stable* counter snapshot
// must be byte-identical too. The stable section is the contract: it
// holds only per-flow/per-record quantities (and their shard rollups),
// so 1, 2, 4 and 8 workers chewing the same impaired capture must
// export the same bytes the inline batch run does.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/obs/registry.hpp"
#include "wm/sim/impairments.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::core {
namespace {

using story::Choice;

std::vector<Choice> alternating(std::size_t n, bool start_non_default) {
  std::vector<Choice> out;
  for (std::size_t i = 0; i < n; ++i) {
    const bool non_default = (i % 2 == 0) == start_non_default;
    out.push_back(non_default ? Choice::kNonDefault : Choice::kDefault);
  }
  return out;
}

AttackPipeline calibrated_pipeline(const story::StoryGraph& graph) {
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 7400 + s;
    auto session = sim::simulate_session(graph, alternating(13, true), config);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline pipeline("interval");
  pipeline.calibrate(calibration);
  return pipeline;
}

std::vector<net::Packet> merged_capture(const story::StoryGraph& graph,
                                        std::size_t viewers,
                                        std::uint64_t seed) {
  std::vector<net::Packet> merged;
  for (std::size_t v = 0; v < viewers; ++v) {
    sim::SessionConfig config;
    config.seed = seed + v;
    config.packetize.client_ip =
        net::Ipv4Address(10, 0, 2, static_cast<std::uint8_t>(10 + v));
    config.packetize.cdn_client_port = static_cast<std::uint16_t>(53000 + 2 * v);
    config.packetize.api_client_port = static_cast<std::uint16_t>(53001 + 2 * v);
    auto session =
        sim::simulate_session(graph, alternating(13, v % 2 == 0), config);
    const util::Duration stagger =
        util::Duration::millis(1500) * static_cast<int>(v);
    for (net::Packet& packet : session.capture.packets) {
      packet.timestamp += stagger;
      merged.push_back(std::move(packet));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

struct Scenario {
  std::string name;
  std::vector<net::Packet> packets;
};

/// The capture as an ideal tap saw it, plus five degraded variants:
/// random frame loss, snaplen truncation, timestamp jitter, and two
/// points of strict un-retransmitted segment loss (bytes the observer
/// never sees by any path, so reassembly must declare gaps and the TLS
/// parser must resynchronize). Impairments are seeded so every run of
/// the suite replays the same damage.
std::vector<Scenario> impaired_variants(const std::vector<net::Packet>& base,
                                        std::uint64_t seed) {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"pristine", base});
  {
    util::Rng rng(seed * 31 + 1);
    scenarios.push_back({"drop2pct", sim::drop_packets(base, 0.02, rng)});
  }
  scenarios.push_back({"snaplen200", sim::truncate_snaplen(base, 200)});
  {
    util::Rng rng(seed * 31 + 2);
    scenarios.push_back({"jitter2ms", sim::jitter_order(base, 0.002, rng)});
  }
  {
    util::Rng rng(seed * 31 + 3);
    scenarios.push_back({"loss01pct", sim::drop_segments(base, 0.001, rng)});
  }
  {
    util::Rng rng(seed * 31 + 4);
    scenarios.push_back({"loss1pct", sim::drop_segments(base, 0.01, rng)});
  }
  return scenarios;
}

void expect_sessions_identical(const InferredSession& a,
                               const InferredSession& b,
                               const std::string& context) {
  ASSERT_EQ(a.questions.size(), b.questions.size()) << context;
  for (std::size_t i = 0; i < a.questions.size(); ++i) {
    EXPECT_EQ(a.questions[i].index, b.questions[i].index) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].question_time, b.questions[i].question_time)
        << context << " Q" << i;
    EXPECT_EQ(a.questions[i].choice, b.questions[i].choice) << context << " Q" << i;
    EXPECT_EQ(a.questions[i].override_time, b.questions[i].override_time)
        << context << " Q" << i;
    EXPECT_DOUBLE_EQ(a.questions[i].confidence, b.questions[i].confidence)
        << context << " Q" << i;
    EXPECT_EQ(a.questions[i].evidence, b.questions[i].evidence)
        << context << " Q" << i;
  }
  EXPECT_EQ(a.type1_records, b.type1_records) << context;
  EXPECT_EQ(a.type2_records, b.type2_records) << context;
  EXPECT_EQ(a.other_records, b.other_records) << context;
}

TEST(Differential, EngineMatchesBatchAcrossSeedsImpairmentsAndShardCounts) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);

  for (const std::uint64_t seed : {std::uint64_t{7501}, std::uint64_t{7520}}) {
    const std::vector<net::Packet> base = merged_capture(graph, 2, seed);
    for (const Scenario& scenario : impaired_variants(base, seed)) {
      // Batch reference: inline run, instrumented.
      obs::Registry batch_registry;
      engine::VectorSource batch_source(&scenario.packets);
      InferOptions batch_options;
      batch_options.shards = 0;
      batch_options.per_client = true;
      batch_options.metrics = &batch_registry;
      const InferReport batch = pipeline.infer(batch_source, batch_options);
      const std::string batch_stable = batch_registry.snapshot().stable_json();
      ASSERT_FALSE(batch_stable.empty());

      for (const std::size_t shards :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        const std::string context = "seed=" + std::to_string(seed) + " " +
                                    scenario.name +
                                    " shards=" + std::to_string(shards);
        obs::Registry registry;
        engine::VectorSource source(&scenario.packets);
        InferOptions options;
        options.shards = shards;
        options.per_client = true;
        options.metrics = &registry;
        const InferReport report = pipeline.infer(source, options);

        // Identical decode: combined and per-viewer.
        expect_sessions_identical(report.combined, batch.combined, context);
        ASSERT_EQ(report.per_client.size(), batch.per_client.size()) << context;
        for (const auto& [client, session] : batch.per_client) {
          ASSERT_TRUE(report.per_client.count(client)) << context << " " << client;
          expect_sessions_identical(report.per_client.at(client), session,
                                    context + " client " + client);
        }

        // Identical counters: the stable snapshot section is
        // byte-for-byte the batch run's, timing excluded by design.
        EXPECT_EQ(registry.snapshot().stable_json(), batch_stable) << context;
      }
    }
  }
}

TEST(Differential, UnretransmittedLossDegradesGracefully) {
  // The headline robustness contract: at 1% un-retransmitted segment
  // loss the pipeline must still recover >= 90% of the choice events a
  // pristine tap yields, and any recovered question whose verdict
  // disagrees with the pristine decode must carry reduced confidence
  // with an evidence trail — loss may cost certainty, never silently
  // produce a wrong full-confidence answer.
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);

  const auto decode = [&](const std::vector<net::Packet>& packets) {
    engine::VectorSource source(&packets);
    return pipeline.infer(source).combined;
  };
  // A lossy question corresponds to a pristine one when their detection
  // times are within half the inter-question spacing; the simulator
  // spaces questions seconds apart, so 2s disambiguates safely.
  const util::Duration match_window = util::Duration::seconds(2);

  std::size_t pristine_total = 0;
  std::size_t recovered_total = 0;
  for (const std::uint64_t seed : {std::uint64_t{7501}, std::uint64_t{7520}}) {
    const std::vector<net::Packet> base = merged_capture(graph, 2, seed);
    const InferredSession pristine = decode(base);
    ASSERT_FALSE(pristine.questions.empty()) << "seed=" << seed;
    for (const InferredQuestion& question : pristine.questions) {
      EXPECT_DOUBLE_EQ(question.confidence, 1.0)
          << "seed=" << seed << " pristine Q" << question.index;
      EXPECT_TRUE(question.evidence.empty())
          << "seed=" << seed << " pristine Q" << question.index;
    }

    util::Rng rng(seed * 31 + 4);
    const InferredSession lossy = decode(sim::drop_segments(base, 0.01, rng));
    pristine_total += pristine.questions.size();

    std::vector<bool> claimed(pristine.questions.size(), false);
    for (const InferredQuestion& question : lossy.questions) {
      // Nearest unclaimed pristine question by detection time.
      std::size_t best = pristine.questions.size();
      util::Duration best_distance{};
      for (std::size_t i = 0; i < pristine.questions.size(); ++i) {
        if (claimed[i]) continue;
        const util::Duration delta =
            question.question_time - pristine.questions[i].question_time;
        const util::Duration distance = delta < util::Duration{} ? -delta : delta;
        if (best == pristine.questions.size() || distance < best_distance) {
          best = i;
          best_distance = distance;
        }
      }
      if (best == pristine.questions.size() || best_distance > match_window) {
        // An extra question the pristine decode never saw: it can only
        // be a loss artefact, so it must not pretend to certainty.
        EXPECT_LT(question.confidence, 1.0)
            << "seed=" << seed << " unmatched lossy question at "
            << question.question_time.to_string();
        continue;
      }
      claimed[best] = true;
      ++recovered_total;
      if (question.choice != pristine.questions[best].choice) {
        EXPECT_LT(question.confidence, 1.0)
            << "seed=" << seed << " Q" << question.index
            << " flipped choice at full confidence";
        EXPECT_FALSE(question.evidence.empty())
            << "seed=" << seed << " Q" << question.index;
      }
    }
  }

  ASSERT_GT(pristine_total, 0u);
  const double recovery = static_cast<double>(recovered_total) /
                          static_cast<double>(pristine_total);
  EXPECT_GE(recovery, 0.9) << "recovered " << recovered_total << "/"
                           << pristine_total << " choice events at 1% loss";
}

TEST(Differential, StableSnapshotIsByteStableAcrossRepeatedRuns) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const std::vector<net::Packet> base = merged_capture(graph, 2, 7560);

  // Same capture, same configuration, two independent threaded runs:
  // stable AND sharded sections must export identical bytes (only the
  // runtime/timing sections may differ between runs).
  std::vector<std::string> deterministic_exports;
  for (int run = 0; run < 2; ++run) {
    obs::Registry registry;
    engine::VectorSource source(&base);
    InferOptions options;
    options.shards = 4;
    options.per_client = true;
    options.metrics = &registry;
    (void)pipeline.infer(source, options);
    deterministic_exports.push_back(registry.snapshot().deterministic_json());
  }
  EXPECT_EQ(deterministic_exports[0], deterministic_exports[1]);
}

TEST(Differential, StableSectionCoversEveryStage) {
  // The differential assertion is only as strong as the section it
  // compares: pin the presence of each instrumented stage's rollup so
  // a future rename cannot silently empty the contract.
  const story::StoryGraph graph = story::make_bandersnatch();
  const AttackPipeline pipeline = calibrated_pipeline(graph);
  const std::vector<net::Packet> base = merged_capture(graph, 2, 7570);

  obs::Registry registry;
  engine::VectorSource source(&base);
  InferOptions options;
  options.shards = 2;
  options.per_client = true;
  options.metrics = &registry;
  const InferReport report = pipeline.infer(source, options);
  const obs::Snapshot snap = registry.snapshot();

  for (const char* key :
       {"engine.packets_in", "engine.packets", "engine.records",
        "engine.records.client_app", "engine.flows.opened",
        "engine.collector.client_records", "engine.collector.viewers",
        "pipeline.infer.runs", "pipeline.questions"}) {
    EXPECT_TRUE(snap.stable.count(key)) << "missing stable key " << key;
  }
  EXPECT_EQ(snap.stable.at("engine.packets_in"), base.size());
  EXPECT_EQ(snap.stable.at("engine.collector.viewers"), 2u);
  EXPECT_EQ(snap.stable.at("pipeline.questions"),
            report.combined.questions.size());
  EXPECT_EQ(snap.stable.at("engine.collector.client_records"),
            snap.stable.at("engine.collector.type1") +
                snap.stable.at("engine.collector.type2") +
                snap.stable.at("engine.collector.other"));
  // Sharded section carries the configuration-dependent breakdowns.
  EXPECT_TRUE(snap.sharded.count("engine.shards_configured"));
  EXPECT_TRUE(snap.sharded.count("engine.shard[0].packets"));
  EXPECT_TRUE(snap.sharded.count("engine.shard[1].packets"));
  EXPECT_EQ(snap.sharded.at("engine.shard[0].packets") +
                snap.sharded.at("engine.shard[1].packets"),
            snap.stable.at("engine.packets"));
}

}  // namespace
}  // namespace wm::core
