// Behavioural profiling from recovered choices, and capture
// impairments (robustness utilities).
#include <gtest/gtest.h>

#include "wm/core/behavior.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/sim/impairments.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/strings.hpp"

namespace wm::core {
namespace {

using story::Choice;

TEST(Behavior, AllDefaultViewerIsUnremarkable) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto profile = profile_viewer(graph, std::vector<Choice>(13, Choice::kDefault),
                                      default_trait_rules());
  EXPECT_DOUBLE_EQ(profile.exploration_rate, 0.0);
  EXPECT_GT(profile.questions, 0u);
  EXPECT_FALSE(profile.ending.empty());
  // Default picks still tag benign traits (breakfast brand etc.).
  EXPECT_EQ(profile.picked_labels.front(), "Sugar Puffs");
}

TEST(Behavior, ViolentPathTagged) {
  const story::StoryGraph graph = story::make_bandersnatch();
  // Follow the main line (defaults) until the dad confrontation — the
  // 9th question on the all-default path — then kill (non-default) and
  // chop up the body (non-default).
  std::vector<Choice> choices(13, Choice::kDefault);
  choices[8] = Choice::kNonDefault;  // "Kill dad"
  choices[9] = Choice::kNonDefault;  // "Chop up body"
  const auto profile = profile_viewer(graph, choices, default_trait_rules());
  const auto& tags = profile.tags;
  EXPECT_NE(std::find(tags.begin(), tags.end(), "violence-affine"), tags.end())
      << "picked labels were: " << util::join(profile.picked_labels, " | ");
  EXPECT_EQ(profile.ending, "ENDING_FIVE_STARS");
}

TEST(Behavior, BrandPreferenceLeaks) {
  const story::StoryGraph graph = story::make_bandersnatch();
  // Q1 non-default = Frosties.
  std::vector<Choice> choices(13, Choice::kDefault);
  choices[0] = Choice::kNonDefault;
  const auto profile = profile_viewer(graph, choices, default_trait_rules());
  const auto& tags = profile.tags;
  EXPECT_NE(std::find(tags.begin(), tags.end(), "brand:frosties"), tags.end());
}

TEST(Behavior, MetaAwareTagViaJobPath) {
  const story::StoryGraph graph = story::make_bandersnatch();
  // Accept the job (Q3 non-default) then pick Netflix at the meta
  // question (next non-default).
  std::vector<Choice> choices{Choice::kDefault, Choice::kDefault,
                              Choice::kNonDefault, Choice::kNonDefault};
  const auto profile = profile_viewer(graph, choices, default_trait_rules());
  const auto& tags = profile.tags;
  EXPECT_NE(std::find(tags.begin(), tags.end(), "meta-aware"), tags.end());
  EXPECT_EQ(profile.ending, "ENDING_NETFLIX_META");
}

TEST(Behavior, EmptyChoicesNoCrash) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const auto profile = profile_viewer(graph, {}, default_trait_rules());
  EXPECT_EQ(profile.questions, 0u);
  EXPECT_DOUBLE_EQ(profile.exploration_rate, 0.0);
  EXPECT_TRUE(profile.ending.empty());  // never reached one
}

TEST(Behavior, CohortReportAggregates) {
  CohortBehaviorReport report;
  ViewerTraitProfile explorer;
  explorer.exploration_rate = 1.0;
  explorer.tags = {"risk-taking"};
  ViewerTraitProfile conformist;
  conformist.exploration_rate = 0.0;

  report.add(explorer, {"mood=Stressed", "all"});
  report.add(conformist, {"mood=Happy", "all"});
  report.add(conformist, {"mood=Happy", "all"});

  ASSERT_EQ(report.groups.size(), 3u);
  EXPECT_EQ(report.groups.at("all").viewers, 3u);
  EXPECT_NEAR(report.groups.at("all").mean_exploration, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.groups.at("mood=Stressed").mean_exploration, 1.0);
  EXPECT_DOUBLE_EQ(report.groups.at("mood=Happy").mean_exploration, 0.0);
  EXPECT_EQ(report.groups.at("all").tag_counts.at("risk-taking"), 1u);
}

TEST(Behavior, ProfilesComputableFromAttackOutput) {
  // End-to-end: infer choices from a capture, then profile them.
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<Choice> calib_choices;
  for (int i = 0; i < 13; ++i) {
    calib_choices.push_back(i % 2 == 0 ? Choice::kNonDefault : Choice::kDefault);
  }
  std::vector<CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 5600 + s;
    auto session = sim::simulate_session(graph, calib_choices, config);
    calibration.push_back(CalibrationSession{std::move(session.capture.packets),
                                             std::move(session.truth)});
  }
  AttackPipeline attack("interval");
  attack.calibrate(calibration);

  sim::SessionConfig config;
  config.seed = 5700;
  const auto victim = sim::simulate_session(
      graph, std::vector<Choice>(13, Choice::kNonDefault), config);
  engine::VectorSource source(&victim.capture.packets);
  const auto inferred = attack.infer(source).combined;
  const auto profile =
      profile_viewer(graph, inferred.choices(), default_trait_rules());
  EXPECT_GT(profile.exploration_rate, 0.9);
  EXPECT_FALSE(profile.tags.empty());
}

}  // namespace
}  // namespace wm::core

namespace wm::sim {
namespace {

std::vector<net::Packet> sample_capture() {
  const story::StoryGraph graph = story::make_bandersnatch();
  SessionConfig config;
  config.seed = 777;
  return simulate_session(graph,
                          std::vector<story::Choice>(13, story::Choice::kDefault),
                          config)
      .capture.packets;
}

TEST(Impairments, DropRateRoughlyHonoured) {
  const auto packets = sample_capture();
  util::Rng rng(1);
  const auto degraded = drop_packets(packets, 0.1, rng);
  const double kept =
      static_cast<double>(degraded.size()) / static_cast<double>(packets.size());
  EXPECT_NEAR(kept, 0.9, 0.03);
  util::Rng rng2(2);
  EXPECT_EQ(drop_packets(packets, 0.0, rng2).size(), packets.size());
}

TEST(Impairments, SnaplenTruncates) {
  const auto packets = sample_capture();
  const auto truncated = truncate_snaplen(packets, 96);
  ASSERT_EQ(truncated.size(), packets.size());
  for (std::size_t i = 0; i < truncated.size(); ++i) {
    EXPECT_LE(truncated[i].data.size(), 96u);
    if (packets[i].data.size() > 96) {
      EXPECT_EQ(truncated[i].original_length, packets[i].data.size());
    }
  }
}

TEST(Impairments, JitterPreservesPacketSet) {
  const auto packets = sample_capture();
  util::Rng rng(3);
  const auto jittered = jitter_order(packets, 0.001, rng);
  ASSERT_EQ(jittered.size(), packets.size());
  // Sorted by time.
  for (std::size_t i = 1; i < jittered.size(); ++i) {
    EXPECT_LE(jittered[i - 1].timestamp, jittered[i].timestamp);
  }
  // Same multiset of payload sizes.
  auto sizes = [](const std::vector<net::Packet>& v) {
    std::vector<std::size_t> out;
    for (const auto& p : v) out.push_back(p.data.size());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(sizes(jittered), sizes(packets));
}

}  // namespace
}  // namespace wm::sim
