#include "wm/net/pcap.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "wm/util/bytes.hpp"

namespace wm::net {
namespace {

Packet make_packet(double seconds, std::size_t size, std::uint8_t fill) {
  return Packet(util::SimTime::from_seconds(seconds), util::Bytes(size, fill));
}

TEST(Pcap, InMemoryRoundTripNanos) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, /*nanosecond_resolution=*/true);
    writer.write(make_packet(1.5, 60, 0xaa));
    writer.write(make_packet(2.000000123, 1500, 0xbb));
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  PcapReader reader(stream);
  EXPECT_TRUE(reader.header().nanosecond_resolution);
  EXPECT_FALSE(reader.header().byte_swapped);
  EXPECT_EQ(reader.header().link_type, LinkType::kEthernet);

  const auto packets = reader.read_all();
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].timestamp.nanos(), 1'500'000'000);
  EXPECT_EQ(packets[1].timestamp.nanos(), 2'000'000'123);
  EXPECT_EQ(packets[0].data.size(), 60u);
  EXPECT_EQ(packets[1].data[0], 0xbb);
}

TEST(Pcap, MicrosecondResolutionTruncatesSubMicro) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, /*nanosecond_resolution=*/false);
    writer.write(make_packet(1.000000999, 10, 0x01));
  }
  PcapReader reader(stream);
  EXPECT_FALSE(reader.header().nanosecond_resolution);
  const auto packets = reader.read_all();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].timestamp.nanos(), 1'000'000'000);
}

TEST(Pcap, SnaplenTruncatesButKeepsOriginalLength) {
  std::stringstream stream;
  {
    PcapWriter writer(stream, true, /*snaplen=*/100);
    writer.write(make_packet(0.1, 500, 0xcc));
  }
  PcapReader reader(stream);
  const auto packets = reader.read_all();
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].data.size(), 100u);
  EXPECT_EQ(packets[0].original_length, 500u);
}

TEST(Pcap, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "wm_test_rt.pcap";
  std::vector<Packet> packets;
  for (int i = 0; i < 25; ++i) {
    packets.push_back(make_packet(0.01 * i, 64 + static_cast<std::size_t>(i),
                                  static_cast<std::uint8_t>(i)));
  }
  write_pcap(path, packets);
  const auto loaded = read_pcap(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].data, packets[i].data);
  }
  std::filesystem::remove(path);
}

TEST(Pcap, EmptyFileHasHeaderOnly) {
  std::stringstream stream;
  { PcapWriter writer(stream); }
  EXPECT_EQ(stream.str().size(), PcapFileHeader::kSize);
  PcapReader reader(stream);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Pcap, RejectsBadMagic) {
  std::stringstream stream;
  stream.write("\x01\x02\x03\x04garbagegarbagegarbage", 25);
  EXPECT_THROW(PcapReader reader(stream), std::runtime_error);
}

TEST(Pcap, RejectsTruncatedRecord) {
  std::stringstream stream;
  {
    PcapWriter writer(stream);
    writer.write(make_packet(1.0, 100, 0x11));
  }
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 40);  // cut into the packet body
  std::stringstream cut(bytes);
  PcapReader reader(cut);
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

TEST(Pcap, RejectsNegativeTimestampOnWrite) {
  std::stringstream stream;
  PcapWriter writer(stream);
  Packet packet(util::SimTime::from_nanos(-5), util::Bytes(10, 0));
  EXPECT_THROW(writer.write(packet), std::invalid_argument);
}

TEST(Pcap, ByteSwappedFileReadable) {
  // Hand-build a byte-swapped (big-endian written) header + one record.
  util::ByteWriter out;
  out.write_u32_be(PcapFileHeader::kMagicMicros);  // reader sees swapped
  out.write_u16_be(2);
  out.write_u16_be(4);
  out.write_u32_be(0);
  out.write_u32_be(0);
  out.write_u32_be(65535);   // snaplen
  out.write_u32_be(1);       // ethernet
  out.write_u32_be(3);       // ts sec
  out.write_u32_be(500000);  // ts usec
  out.write_u32_be(4);       // incl len
  out.write_u32_be(4);       // orig len
  out.write_u32_be(0xdeadbeef);

  std::string text(util::as_chars(out.view()));
  std::stringstream stream(text);
  PcapReader reader(stream);
  EXPECT_TRUE(reader.header().byte_swapped);
  EXPECT_EQ(reader.header().snaplen, 65535u);
  const auto packet = reader.next();
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->timestamp.nanos(), 3'500'000'000);
  EXPECT_EQ(packet->data.size(), 4u);
  EXPECT_FALSE(reader.next().has_value());
}

}  // namespace
}  // namespace wm::net
