// Hierarchical timing wheel: ordering, cascade correctness across
// levels, cancel/reschedule semantics, long-idle wraparound parking,
// and re-entrant scheduling from fire callbacks.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "wm/util/timer_wheel.hpp"

namespace wm::util {
namespace {

struct Fired {
  TimerWheel::TimerId id;
  std::uint64_t data;
  SimTime deadline;
  SimTime wheel_now;  // wheel position when the callback ran
};

/// Advance and record every fire with the wheel position it ran at.
std::vector<Fired> advance_collect(TimerWheel& wheel, SimTime now) {
  std::vector<Fired> fired;
  wheel.advance(now, [&](TimerWheel::TimerId id, std::uint64_t data,
                         SimTime deadline) {
    fired.push_back(Fired{id, data, deadline, wheel.now()});
  });
  return fired;
}

TimerWheel::Config small_wheel() {
  TimerWheel::Config config;
  config.tick = Duration::millis(10);
  config.slot_bits = 4;  // 16 slots per level
  config.levels = 3;     // horizon: 16^3 = 4096 ticks = 40.96 s
  return config;
}

TEST(TimerWheel, FiresInDeadlineOrderAndNeverEarly) {
  TimerWheel wheel(small_wheel());
  // Deliberately scheduled out of order, including duplicates.
  const std::vector<std::int64_t> deadlines_ms{470, 30, 250, 30, 1210, 90};
  for (std::size_t i = 0; i < deadlines_ms.size(); ++i) {
    wheel.schedule(SimTime::from_nanos(deadlines_ms[i] * 1'000'000),
                   /*data=*/i);
  }
  EXPECT_EQ(wheel.active(), deadlines_ms.size());

  std::vector<Fired> fired;
  // Advance in small irregular increments; every timer must fire at a
  // wheel position >= its deadline (never early), in deadline order.
  for (std::int64_t ms = 7; ms <= 1400; ms += 7) {
    for (const Fired& f : advance_collect(
             wheel, SimTime::from_nanos(ms * 1'000'000))) {
      fired.push_back(f);
    }
  }
  ASSERT_EQ(fired.size(), deadlines_ms.size());
  EXPECT_EQ(wheel.active(), 0u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_GE(fired[i].wheel_now.nanos(), fired[i].deadline.nanos()) << i;
    // At most one tick (10ms) plus the 7ms advance stride late.
    EXPECT_LE(fired[i].wheel_now.nanos() - fired[i].deadline.nanos(),
              20 * 1'000'000) << i;
    if (i > 0) {
      EXPECT_GE(fired[i].deadline.nanos(), fired[i - 1].deadline.nanos()) << i;
    }
  }
}

TEST(TimerWheel, CascadeDeliversAcrossEveryLevel) {
  // One timer per level of the hierarchy: level 0 (< 16 ticks), level 1
  // (< 256 ticks), level 2 (< 4096 ticks). Each must survive the
  // cascade down and fire exactly once, on time.
  TimerWheel wheel(small_wheel());
  const std::vector<std::int64_t> deadlines_ms{50, 1700, 29'000};
  for (std::size_t i = 0; i < deadlines_ms.size(); ++i) {
    wheel.schedule(SimTime::from_nanos(deadlines_ms[i] * 1'000'000), i);
  }

  std::map<std::uint64_t, int> count;
  for (std::int64_t ms = 100; ms <= 30'000; ms += 100) {
    for (const Fired& f : advance_collect(
             wheel, SimTime::from_nanos(ms * 1'000'000))) {
      ++count[f.data];
      EXPECT_GE(f.wheel_now.nanos(), f.deadline.nanos());
    }
  }
  ASSERT_EQ(count.size(), 3u);
  for (const auto& [data, n] : count) EXPECT_EQ(n, 1) << "timer " << data;
}

TEST(TimerWheel, LongIdleWraparoundParksAndStillFires) {
  // A deadline beyond the whole wheel's horizon (40.96s here) parks in
  // the top level's furthest slot and must re-cascade — possibly
  // several laps — instead of firing at the horizon or vanishing.
  TimerWheel wheel(small_wheel());
  const SimTime deadline = SimTime::from_seconds(130.0);  // ~3.2 horizons
  wheel.schedule(deadline, 77);

  std::vector<Fired> fired;
  for (std::int64_t s = 1; s <= 140; ++s) {
    for (const Fired& f :
         advance_collect(wheel, SimTime::from_seconds(double(s)))) {
      fired.push_back(f);
    }
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].data, 77u);
  EXPECT_GE(fired[0].wheel_now.nanos(), deadline.nanos());
  EXPECT_LE(fired[0].wheel_now.nanos() - deadline.nanos(),
            Duration::seconds(1).total_nanos() + 10'000'000);
}

TEST(TimerWheel, EmptyWheelJumpsWithoutCranking) {
  // With nothing armed, a huge advance is O(1); timers scheduled after
  // the jump still fire relative to the new position.
  TimerWheel wheel(small_wheel());
  EXPECT_EQ(advance_collect(wheel, SimTime::from_seconds(3600.0)).size(), 0u);
  EXPECT_GE(wheel.now().nanos(), SimTime::from_seconds(3599.9).nanos());

  wheel.schedule(SimTime::from_seconds(3600.5), 5);
  const auto fired = advance_collect(wheel, SimTime::from_seconds(3601.0));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].data, 5u);
}

TEST(TimerWheel, CancelDisarmsAndStaleIdsAreSafe) {
  TimerWheel wheel(small_wheel());
  const auto keep = wheel.schedule(SimTime::from_nanos(100'000'000), 1);
  const auto drop = wheel.schedule(SimTime::from_nanos(100'000'000), 2);
  EXPECT_EQ(wheel.active(), 2u);

  EXPECT_TRUE(wheel.cancel(drop));
  EXPECT_FALSE(wheel.cancel(drop));  // double-cancel: no-op
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
  EXPECT_EQ(wheel.active(), 1u);

  auto fired = advance_collect(wheel, SimTime::from_nanos(200'000'000));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].data, 1u);
  // The fired id is stale now; cancelling it must not disturb a new
  // timer that recycled the same arena slot (generation tag).
  const auto recycled = wheel.schedule(SimTime::from_nanos(300'000'000), 3);
  EXPECT_FALSE(wheel.cancel(keep));
  EXPECT_EQ(wheel.active(), 1u);
  fired = advance_collect(wheel, SimTime::from_nanos(400'000'000));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].data, 3u);
  EXPECT_EQ(fired[0].id, recycled);
}

TEST(TimerWheel, RescheduleMovesDeadline) {
  TimerWheel wheel(small_wheel());
  auto id = wheel.schedule(SimTime::from_nanos(50'000'000), 9);
  // Push it out; the original deadline must not fire.
  id = wheel.reschedule(id, SimTime::from_nanos(900'000'000), 9);
  EXPECT_EQ(wheel.active(), 1u);
  EXPECT_EQ(advance_collect(wheel, SimTime::from_nanos(500'000'000)).size(),
            0u);
  // Pull a fresh timer in; reschedule with kInvalidTimer is a schedule.
  const auto other =
      wheel.reschedule(TimerWheel::kInvalidTimer,
                       SimTime::from_nanos(600'000'000), 10);
  EXPECT_NE(other, TimerWheel::kInvalidTimer);
  const auto fired = advance_collect(wheel, SimTime::from_nanos(1'000'000'000));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].data, 10u);
  EXPECT_EQ(fired[1].data, 9u);
}

TEST(TimerWheel, CallbackMaySchedulePastAndFutureTimers) {
  // A callback scheduling at/behind the in-flight tick fires within the
  // same advance() (the slot is re-drained); one scheduling ahead waits.
  TimerWheel wheel(small_wheel());
  wheel.schedule(SimTime::from_nanos(100'000'000), 0);

  std::vector<std::uint64_t> order;
  wheel.advance(SimTime::from_nanos(200'000'000),
                [&](TimerWheel::TimerId, std::uint64_t data, SimTime) {
                  order.push_back(data);
                  if (data == 0) {
                    // Behind the wheel: fires this same advance.
                    wheel.schedule(SimTime::from_nanos(50'000'000), 1);
                    // Ahead of the wheel: must wait for the next call.
                    wheel.schedule(SimTime::from_nanos(900'000'000), 2);
                  }
                });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(wheel.active(), 1u);
  const auto later = advance_collect(wheel, SimTime::from_nanos(1'000'000'000));
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].data, 2u);
}

TEST(TimerWheel, MemoryAccountingGrowsWithArena) {
  TimerWheel wheel(small_wheel());
  const std::size_t baseline = wheel.memory_bytes();
  std::vector<TimerWheel::TimerId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(wheel.schedule(SimTime::from_seconds(1.0 + i * 0.001),
                                 static_cast<std::uint64_t>(i)));
  }
  EXPECT_GT(wheel.memory_bytes(), baseline);
  EXPECT_EQ(wheel.active(), 1000u);
  for (const auto id : ids) EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.active(), 0u);
}

}  // namespace
}  // namespace wm::util
