// Streaming-engine semantics: the Fig. 1 process — type-1 at each
// question, type-2 only on non-default choices, prefetch + abort.
#include <gtest/gtest.h>

#include "wm/sim/streaming.hpp"
#include "wm/story/bandersnatch.hpp"

namespace wm::sim {
namespace {

using story::Choice;

struct TraceCounts {
  std::size_t type1 = 0;
  std::size_t type2 = 0;
  std::size_t prefetch = 0;
  std::size_t aborted = 0;
};

TraceCounts count_events(const AppTrace& trace) {
  TraceCounts counts;
  for (const AppEvent& event : trace.events) {
    if (event.from_client) {
      if (event.client_kind == ClientMessageKind::kType1Json) ++counts.type1;
      if (event.client_kind == ClientMessageKind::kType2Json) ++counts.type2;
    } else {
      if (event.is_prefetch) ++counts.prefetch;
      if (event.prefetch_aborted) ++counts.aborted;
    }
  }
  return counts;
}

AppTrace run_trace(const std::vector<Choice>& choices, std::uint64_t seed = 5) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  StreamingConfig config;
  util::Rng rng(seed);
  return simulate_app_trace(graph, choices, profile, config, rng);
}

TEST(Streaming, OneType1PerQuestion) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kDefault));
  const TraceCounts counts = count_events(trace);
  EXPECT_EQ(counts.type1, trace.truth.questions.size());
  EXPECT_EQ(counts.type2, 0u);  // all defaults -> no type-2 at all
  EXPECT_TRUE(trace.truth.reached_ending);
}

TEST(Streaming, Type2CountMatchesNonDefaultChoices) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kNonDefault));
  const TraceCounts counts = count_events(trace);
  std::size_t non_defaults = 0;
  for (const QuestionOutcome& q : trace.truth.questions) {
    if (q.choice == Choice::kNonDefault) ++non_defaults;
  }
  EXPECT_EQ(counts.type2, non_defaults);
  EXPECT_GT(non_defaults, 0u);
}

TEST(Streaming, PrefetchAbortedExactlyOnNonDefault) {
  // Mixed choices: default, non-default, default, ...
  std::vector<Choice> choices;
  for (int i = 0; i < 20; ++i) {
    choices.push_back(i % 2 == 0 ? Choice::kDefault : Choice::kNonDefault);
  }
  const AppTrace trace = run_trace(choices);
  // Aborted prefetch chunks exist iff some non-default choice followed
  // a window in which prefetch happened.
  const TraceCounts counts = count_events(trace);
  EXPECT_GT(counts.prefetch, 0u);
  bool any_non_default = false;
  for (const QuestionOutcome& q : trace.truth.questions) {
    any_non_default |= q.choice == Choice::kNonDefault;
  }
  if (any_non_default) {
    EXPECT_GT(counts.aborted, 0u);
  }
  EXPECT_LE(counts.aborted, counts.prefetch);

  // Aborted chunks always belong to the *default* branch of a question
  // answered non-default.
  for (const AppEvent& event : trace.events) {
    if (event.prefetch_aborted) {
      EXPECT_TRUE(event.is_prefetch);
    }
  }
}

TEST(Streaming, EventsSortedByTime) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kNonDefault));
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  }
}

TEST(Streaming, QuestionTimesMatchType1Events) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kDefault));
  std::vector<util::SimTime> type1_times;
  for (const AppEvent& event : trace.events) {
    if (event.from_client && event.client_kind == ClientMessageKind::kType1Json) {
      type1_times.push_back(event.time);
    }
  }
  ASSERT_EQ(type1_times.size(), trace.truth.questions.size());
  for (std::size_t i = 0; i < type1_times.size(); ++i) {
    EXPECT_EQ(type1_times[i], trace.truth.questions[i].question_time);
  }
}

TEST(Streaming, DecisionInsideWindow) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kNonDefault));
  StreamingConfig config;
  for (const QuestionOutcome& q : trace.truth.questions) {
    const double delay = (q.decision_time - q.question_time).to_seconds();
    EXPECT_GT(delay, 0.0);
    EXPECT_LE(delay, config.choice_window_seconds);
  }
}

TEST(Streaming, ViewerStopsWhenChoicesRunOut) {
  const AppTrace trace = run_trace({Choice::kDefault, Choice::kDefault});
  EXPECT_EQ(trace.truth.questions.size(), 2u);
  EXPECT_FALSE(trace.truth.reached_ending);
}

TEST(Streaming, GroundTruthChoicesAccessor) {
  const AppTrace trace =
      run_trace({Choice::kDefault, Choice::kNonDefault, Choice::kDefault});
  const auto choices = trace.truth.choices();
  ASSERT_EQ(choices.size(), trace.truth.questions.size());
  for (std::size_t i = 0; i < choices.size(); ++i) {
    EXPECT_EQ(choices[i], trace.truth.questions[i].choice);
  }
}

TEST(Streaming, TimeScaleCompressesSession) {
  const story::StoryGraph graph = story::make_bandersnatch();
  const TrafficProfile profile = make_traffic_profile(OperationalConditions{});
  const std::vector<Choice> choices(20, Choice::kDefault);

  StreamingConfig slow;
  slow.time_scale = 0.2;
  util::Rng rng1(3);
  const AppTrace long_trace =
      simulate_app_trace(graph, choices, profile, slow, rng1);

  StreamingConfig fast;
  fast.time_scale = 0.05;
  util::Rng rng2(3);
  const AppTrace short_trace =
      simulate_app_trace(graph, choices, profile, fast, rng2);

  EXPECT_GT(long_trace.session_length, short_trace.session_length);
  // Same structural ground truth regardless of scale.
  EXPECT_EQ(long_trace.truth.questions.size(), short_trace.truth.questions.size());
}

TEST(Streaming, DeterministicForSeed) {
  const AppTrace a = run_trace(std::vector<Choice>(20, Choice::kNonDefault), 77);
  const AppTrace b = run_trace(std::vector<Choice>(20, Choice::kNonDefault), 77);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].plaintext_size, b.events[i].plaintext_size);
  }
}

TEST(Streaming, TelemetryPresent) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kDefault));
  std::size_t telemetry = 0;
  for (const AppEvent& event : trace.events) {
    if (event.from_client &&
        (event.client_kind == ClientMessageKind::kTelemetry ||
         event.client_kind == ClientMessageKind::kLogBatch)) {
      ++telemetry;
    }
  }
  EXPECT_GT(telemetry, 0u);
}

TEST(Streaming, ChunksCoverEverySegmentOnPath) {
  const AppTrace trace = run_trace(std::vector<Choice>(20, Choice::kDefault));
  std::set<story::SegmentId> chunked;
  for (const AppEvent& event : trace.events) {
    if (!event.from_client && event.segment != story::kInvalidSegment) {
      chunked.insert(event.segment);
    }
  }
  for (story::SegmentId id : trace.truth.path) {
    EXPECT_TRUE(chunked.count(id)) << "segment " << id << " never streamed";
  }
}

}  // namespace
}  // namespace wm::sim
