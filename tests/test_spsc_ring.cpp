// The lock-free SPSC ring under the engine's dispatcher→shard handoff:
// FIFO order through many wraparounds, capacity bounds, close/drain
// semantics, park/unpark at the full and empty edges, and a
// producer/consumer stress pass meant to run under TSan (ctest label
// "concurrency").
#include "wm/util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace wm::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderThroughManyWraparounds) {
  SpscRing<std::uint64_t> ring(4);  // tiny: every 4 pushes wrap
  std::uint64_t next_out = 0;
  for (std::uint64_t value = 0; value < 1000;) {
    // Push a small burst, then drain part of it, so the cursors sweep
    // the ring at staggered phases.
    for (int burst = 0; burst < 3 && value < 1000; ++burst) {
      std::uint64_t v = value;
      if (!ring.try_push(v)) break;
      ++value;
    }
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_out++);
  }
  std::uint64_t out = 0;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, 1000u);
}

TEST(SpscRing, TryPushFailsAtCapacityAndTryPopWhenEmpty) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 99);  // a failed push leaves the value untouched
  EXPECT_EQ(ring.size_approx(), 4u);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  int accepted = 4;
  EXPECT_TRUE(ring.try_push(accepted));
}

TEST(SpscRing, CloseDrainsQueuedItemsThenEndsStream) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ring.push(i));
  }
  ring.close();
  EXPECT_FALSE(ring.push(42));  // closed rings accept nothing
  int out = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // drained + closed = end of stream
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRing, BlockedProducerUnblocksWhenConsumerDrains) {
  SpscRing<int> ring(2);
  for (int i = 0; i < 2; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ring.push(2));  // parks: the ring is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(ring.pop(out));
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(SpscRing, BlockedConsumerUnblocksOnClose) {
  SpscRing<int> ring(4);
  std::atomic<bool> ended{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(ring.pop(out));  // parks empty, then sees close
    ended.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ended.load());
  ring.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(SpscRing, ProducerConsumerStressPreservesEverySequenceElement) {
  // One producer, one consumer, a deliberately small ring: both sides
  // hammer the park/unpark edges while TSan watches the handoff.
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(8);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (ring.pop(value)) received.push_back(value);
  });
  for (std::uint64_t value = 0; value < kCount; ++value) {
    ASSERT_TRUE(ring.push(value));
  }
  ring.close();
  consumer.join();

  ASSERT_EQ(received.size(), kCount);  // nothing lost
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at " << i;  // nothing reordered
  }
}

TEST(SpscRing, MovesValuesThroughWithoutCopying) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace wm::util
