// The lock-free SPSC ring under the engine's dispatcher→shard handoff:
// FIFO order through many wraparounds, capacity bounds, close/drain
// semantics, park/unpark at the full and empty edges, and a
// producer/consumer stress pass meant to run under TSan (ctest label
// "concurrency").
#include "wm/util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace wm::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderThroughManyWraparounds) {
  SpscRing<std::uint64_t> ring(4);  // tiny: every 4 pushes wrap
  std::uint64_t next_out = 0;
  for (std::uint64_t value = 0; value < 1000;) {
    // Push a small burst, then drain part of it, so the cursors sweep
    // the ring at staggered phases.
    for (int burst = 0; burst < 3 && value < 1000; ++burst) {
      std::uint64_t v = value;
      if (!ring.try_push(v)) break;
      ++value;
    }
    std::uint64_t out = 0;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_out++);
  }
  std::uint64_t out = 0;
  while (ring.try_pop(out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, 1000u);
}

TEST(SpscRing, TryPushFailsAtCapacityAndTryPopWhenEmpty) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  int rejected = 99;
  EXPECT_FALSE(ring.try_push(rejected));
  EXPECT_EQ(rejected, 99);  // a failed push leaves the value untouched
  EXPECT_EQ(ring.size_approx(), 4u);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  int accepted = 4;
  EXPECT_TRUE(ring.try_push(accepted));
}

TEST(SpscRing, CloseDrainsQueuedItemsThenEndsStream) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ring.push(i));
  }
  ring.close();
  EXPECT_FALSE(ring.push(42));  // closed rings accept nothing
  int out = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // drained + closed = end of stream
  EXPECT_TRUE(ring.closed());
}

TEST(SpscRing, BlockedProducerUnblocksWhenConsumerDrains) {
  SpscRing<int> ring(2);
  for (int i = 0; i < 2; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ring.push(2));  // parks: the ring is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  ASSERT_TRUE(ring.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(ring.pop(out));
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(SpscRing, BlockedConsumerUnblocksOnClose) {
  SpscRing<int> ring(4);
  std::atomic<bool> ended{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(ring.pop(out));  // parks empty, then sees close
    ended.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ended.load());
  ring.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(SpscRing, ProducerConsumerStressPreservesEverySequenceElement) {
  // One producer, one consumer, a deliberately small ring: both sides
  // hammer the park/unpark edges while TSan watches the handoff.
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(8);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    std::uint64_t value = 0;
    while (ring.pop(value)) received.push_back(value);
  });
  for (std::uint64_t value = 0; value < kCount; ++value) {
    ASSERT_TRUE(ring.push(value));
  }
  ring.close();
  consumer.join();

  ASSERT_EQ(received.size(), kCount);  // nothing lost
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at " << i;  // nothing reordered
  }
}

TEST(SpscRing, BatchPushAcceptsUpToFreeSpace) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t values[12];
  for (std::uint64_t i = 0; i < 12; ++i) values[i] = i;

  // 12 offered into an empty 8-slot ring: exactly the free space lands.
  EXPECT_EQ(ring.try_push_n(values, 12), 8u);
  EXPECT_EQ(ring.size_approx(), 8u);
  EXPECT_EQ(ring.try_push_n(values + 8, 4), 0u);  // full: nothing moves

  // Drain three, and the next batch fits exactly that partial window.
  std::uint64_t out = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(ring.try_push_n(values + 8, 4), 3u);
  EXPECT_EQ(ring.size_approx(), 8u);
  // FIFO across the batched pushes: 3..7 then 8..10.
  for (std::uint64_t expect = 3; expect <= 10; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_EQ(ring.try_pop_n(&out, 1), 0u);  // empty again
}

TEST(SpscRing, BatchPopTakesUpToAvailable) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t out[8] = {};
  EXPECT_EQ(ring.try_pop_n(out, 8), 0u);  // empty ring: nothing
  EXPECT_EQ(ring.try_pop_n(out, 0), 0u);  // zero-max is a no-op

  std::uint64_t values[5] = {10, 11, 12, 13, 14};
  ASSERT_EQ(ring.try_push_n(values, 5), 5u);
  // Ask for more than is queued: get exactly what was there, in order.
  EXPECT_EQ(ring.try_pop_n(out, 8), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i], 10 + i);
  EXPECT_EQ(ring.size_approx(), 0u);
}

TEST(SpscRing, BlockingBatchPushStopsShortOnClose) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t values[6] = {0, 1, 2, 3, 4, 5};
  std::atomic<std::size_t> accepted{0};
  std::thread producer([&] {
    // 6 into a 4-slot ring with no consumer: parks after 4, then the
    // close unblocks it with a short count.
    accepted.store(ring.push_n(values, 6));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  producer.join();
  EXPECT_EQ(accepted.load(), 4u);
  // The queued prefix still drains after close.
  std::uint64_t out[6] = {};
  EXPECT_EQ(ring.try_pop_n(out, 6), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, BatchedProducerConsumerPreservesSequence) {
  // Same guarantee as the per-item stress pass, but moving data through
  // try_push_n/push_n and try_pop_n in uneven batch sizes so the batch
  // windows wrap the (deliberately tiny) ring at staggered phases.
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring(16);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    std::uint64_t chunk[7];
    for (;;) {
      const std::size_t n = ring.try_pop_n(chunk, 7);
      if (n == 0) {
        std::uint64_t one = 0;
        if (!ring.pop(one)) break;  // parks; false = closed + drained
        received.push_back(one);
        continue;
      }
      received.insert(received.end(), chunk, chunk + n);
    }
  });

  std::uint64_t next = 0;
  std::uint64_t batch[5];
  while (next < kCount) {
    std::size_t fill = 0;
    while (fill < 5 && next < kCount) batch[fill++] = next++;
    ASSERT_EQ(ring.push_n(batch, fill), fill);
  }
  ring.close();
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at " << i;
  }
}

TEST(SpscRing, MovesValuesThroughWithoutCopying) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace wm::util
