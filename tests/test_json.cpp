#include "wm/util/json.hpp"

#include <gtest/gtest.h>

namespace wm::util {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(JsonValue::parse("null"), JsonValue(nullptr));
  EXPECT_EQ(JsonValue::parse("true"), JsonValue(true));
  EXPECT_EQ(JsonValue::parse("false"), JsonValue(false));
  EXPECT_EQ(JsonValue::parse("42"), JsonValue(std::int64_t{42}));
  EXPECT_EQ(JsonValue::parse("-17"), JsonValue(std::int64_t{-17}));
  EXPECT_EQ(JsonValue::parse("\"hi\""), JsonValue("hi"));
}

TEST(Json, DoubleParsing) {
  const JsonValue v = JsonValue::parse("3.25");
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.as_double(), 3.25);
  const JsonValue e = JsonValue::parse("1e3");
  EXPECT_DOUBLE_EQ(e.as_double(), 1000.0);
  const JsonValue n = JsonValue::parse("-2.5e-2");
  EXPECT_DOUBLE_EQ(n.as_double(), -0.025);
}

TEST(Json, IntAccessibleAsDouble) {
  const JsonValue v(std::int64_t{7});
  EXPECT_DOUBLE_EQ(v.as_double(), 7.0);
  EXPECT_THROW((void)v.as_string(), std::runtime_error);
}

TEST(Json, ObjectAndArray) {
  const JsonValue v = JsonValue::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("missing"));
  const JsonArray& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
}

TEST(Json, CompactDumpIsCanonical) {
  JsonObject obj;
  obj["b"] = JsonValue(1);
  obj["a"] = JsonValue(JsonArray{JsonValue(true), JsonValue(nullptr)});
  const JsonValue v(std::move(obj));
  EXPECT_EQ(v.dump(), R"({"a":[true,null],"b":1})");
}

TEST(Json, DumpParseRoundTrip) {
  const std::string text =
      R"({"choices":[{"index":1,"pick":"default"},{"index":2,"pick":"non-default"}],)"
      R"("viewer":17,"weights":[0.25,0.75]})";
  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(JsonValue::parse(v.dump()), v);
  EXPECT_EQ(JsonValue::parse(v.dump(2)), v);  // pretty print parses back
}

TEST(Json, StringEscapes) {
  const JsonValue v = JsonValue::parse(R"("line\nquote\"back\\slash\ttab")");
  EXPECT_EQ(v.as_string(), "line\nquote\"back\\slash\ttab");
  // Escapes survive a round trip.
  EXPECT_EQ(JsonValue::parse(v.dump()), v);
}

TEST(Json, UnicodeEscapes) {
  const JsonValue v = JsonValue::parse(R"("Aé€")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9\xe2\x82\xac");  // A, é, €
}

TEST(Json, ControlCharactersEscapedOnDump) {
  const JsonValue v(std::string("a\x01"
                                "b"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("1 2"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{a:1}"), std::runtime_error);
}

TEST(Json, WhitespaceTolerated) {
  const JsonValue v = JsonValue::parse("  {\n\t\"a\" :\r 1 }  ");
  EXPECT_EQ(v.at("a").as_int(), 1);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::parse("{}").dump(), "{}");
  EXPECT_EQ(JsonValue::parse("[]").dump(), "[]");
  EXPECT_EQ(JsonValue::parse("{}").dump(2), "{}");
}

TEST(Json, NonFiniteNumbersRejectedOnDump) {
  const JsonValue v(std::numeric_limits<double>::infinity());
  EXPECT_THROW(v.dump(), std::runtime_error);
}

TEST(Json, DeepNesting) {
  std::string text;
  for (int i = 0; i < 40; ++i) text += "[";
  text += "1";
  for (int i = 0; i < 40; ++i) text += "]";
  JsonValue v = JsonValue::parse(text);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(v.is_array());
    JsonValue inner = v.as_array()[0];  // copy out before replacing v
    v = std::move(inner);
  }
  EXPECT_EQ(v.as_int(), 1);
}

TEST(Json, NestingBeyondTheCapIsRejectedNotACrash) {
  // The parser caps container nesting at 192 levels; hostile input
  // (e.g. "[[[[..." from a fuzzer) must fail with a parse error, never
  // by exhausting the native stack.
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "[";
  EXPECT_THROW((void)JsonValue::parse(deep), std::runtime_error);

  std::string mixed;
  for (int i = 0; i < 300; ++i) mixed += "{\"k\":[";
  EXPECT_THROW((void)JsonValue::parse(mixed), std::runtime_error);

  // Just inside the cap still parses (objects+arrays share the budget).
  std::string ok;
  for (int i = 0; i < 96; ++i) ok += "[";
  ok += "true";
  for (int i = 0; i < 96; ++i) ok += "]";
  EXPECT_TRUE(JsonValue::parse(ok).is_array());
}

TEST(JsonEscape, PassthroughForPlainText) {
  EXPECT_EQ(json_escape("plain text 123"), "plain text 123");
}

}  // namespace
}  // namespace wm::util
