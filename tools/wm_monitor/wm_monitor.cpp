// wm_monitor — long-running continuous-monitor service.
//
// Runs wm::monitor::ContinuousMonitor over one of two traffic sources
// and streams inferred events to stdout as they happen:
//
//   * capture mode (--capture file.pcap): replay a recorded capture,
//     optionally paced by its original timestamps (--speed 1 replays
//     in real time, --speed 10 compresses 10:1, --speed 0 runs as
//     fast as the file reads). The classifier is calibrated from
//     simulated Bandersnatch sessions, matching captures produced by
//     wm's simulator/generate_dataset.
//
//   * fleet mode (--fleet N): generate a synthetic monitoring fleet of
//     N sessions (--concurrency K in flight at once) and monitor it —
//     the soak workload, available from the command line. Calibration
//     comes from the workload generator itself.
//
// Memory stays bounded: pass --max-mb to cap viewer decode state; the
// monitor sheds oldest-idle viewers instead of growing. --stats-every
// prints a periodic one-line status so a long run is observable.
//
// --threads N (default 1) shards the monitor across N worker threads
// (wm::monitor::MonitorFleet): traffic is partitioned by viewer, each
// shard owns a private monitor, and --max-mb becomes the fleet-wide
// budget. Per-viewer event order is unchanged; cross-viewer order is
// per-shard (see fleet.hpp for the ordering contract).
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "wm/core/engine/events.hpp"
#include "wm/core/engine/source.hpp"
#include "wm/core/pipeline.hpp"
#include "wm/monitor/fleet.hpp"
#include "wm/monitor/live_source.hpp"
#include "wm/monitor/monitor.hpp"
#include "wm/monitor/workload.hpp"
#include "wm/obs/registry.hpp"
#include "wm/sim/session.hpp"
#include "wm/story/bandersnatch.hpp"
#include "wm/util/cli.hpp"

using namespace wm;

namespace {

/// Emits one line per monitor event; --quiet reduces it to evictions.
/// Thread-safe as the fleet requires: the only state is the const
/// `quiet_` flag, and stdio makes each printf call atomic.
class LineSink final : public engine::EventSink {
 public:
  explicit LineSink(bool quiet) : quiet_(quiet) {}

  void on_question_opened(const engine::QuestionOpenedEvent& event) override {
    if (quiet_) return;
    std::printf("%s question client=%s q=%zu record=%u\n",
                event.question.question_time.to_string().c_str(),
                std::string(event.client).c_str(), event.question.index,
                event.record_length);
  }
  void on_choice_inferred(const engine::ChoiceInferredEvent& event) override {
    if (quiet_ || !event.final) return;
    std::printf("%s choice   client=%s q=%zu branch=%s confidence=%.2f\n",
                event.at.to_string().c_str(),
                std::string(event.client).c_str(), event.question.index,
                event.question.choice == story::Choice::kNonDefault
                    ? "non-default"
                    : "default",
                event.question.confidence);
  }
  void on_viewer_evicted(const engine::ViewerEvictedEvent& event) override {
    if (quiet_ && event.reason == engine::ViewerEvictedEvent::Reason::kShutdown) {
      return;
    }
    const char* reason = "shutdown";
    if (event.reason == engine::ViewerEvictedEvent::Reason::kIdle) {
      reason = "idle";
    } else if (event.reason ==
               engine::ViewerEvictedEvent::Reason::kMemoryShed) {
      reason = "memory-shed";
    }
    std::printf("%s evicted  client=%s reason=%s questions=%zu\n",
                event.at.to_string().c_str(),
                std::string(event.client).c_str(), reason,
                event.questions_emitted);
  }
  void on_gap_observed(const engine::GapObservedEvent& event) override {
    if (quiet_) return;
    std::printf("%s gap      client=%s\n",
                event.gap.at.to_string().c_str(),
                std::string(event.client).c_str());
  }

 private:
  const bool quiet_;
};

/// Classifier for capture mode: fit on simulated calibration sessions,
/// the same procedure the examples use against simulator captures.
std::unique_ptr<core::AttackPipeline> simulated_calibration() {
  const story::StoryGraph graph = story::make_bandersnatch();
  std::vector<story::Choice> choices;
  for (int i = 0; i < 13; ++i) {
    choices.push_back(i % 2 == 0 ? story::Choice::kNonDefault
                                 : story::Choice::kDefault);
  }
  std::vector<core::CalibrationSession> calibration;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sim::SessionConfig config;
    config.seed = 4242 + s;
    auto session = sim::simulate_session(graph, choices, config);
    calibration.push_back(core::CalibrationSession{
        std::move(session.capture.packets), std::move(session.truth)});
  }
  auto attack = std::make_unique<core::AttackPipeline>("interval");
  attack->calibrate(calibration);
  return attack;
}

int run_monitor(monitor::ContinuousMonitor& monitor,
                engine::PacketSource& source, std::size_t stats_every) {
  engine::PacketBatch batch;
  std::uint64_t fed = 0;
  std::uint64_t next_report = stats_every;
  for (;;) {
    const std::size_t count = source.read_batch(batch, 256);
    if (count == 0) break;
    for (const net::Packet& packet : batch) monitor.feed(packet);
    fed += count;
    if (stats_every != 0 && fed >= next_report) {
      next_report += stats_every;
      std::fprintf(stderr,
                   "status packets=%llu viewers=%zu mem=%zuB shed=%llu\n",
                   static_cast<unsigned long long>(fed),
                   monitor.active_viewers(), monitor.memory_bytes(),
                   static_cast<unsigned long long>(monitor.stats().viewers_shed));
    }
  }
  const monitor::MonitorStats stats = monitor.finish();
  std::printf("%s\n", stats.to_string().c_str());
  if (source.error().has_value()) {
    std::fprintf(stderr, "source error: %s\n",
                 source.error()->message.c_str());
    return 1;
  }
  return 0;
}

/// Forwarding source that prints the periodic status line from the
/// pumping thread (the fleet's gauges are safe to read concurrently).
class StatusSource final : public engine::PacketSource {
 public:
  StatusSource(engine::PacketSource& inner, monitor::MonitorFleet& fleet,
               std::size_t stats_every)
      : inner_(inner), fleet_(fleet), stats_every_(stats_every) {}

  std::optional<net::Packet> next() override {
    auto packet = inner_.next();
    if (packet) tick(1);
    return packet;
  }
  std::size_t read_batch(engine::PacketBatch& out, std::size_t max) override {
    const std::size_t got = inner_.read_batch(out, max);
    tick(got);
    return got;
  }

 private:
  void tick(std::size_t count) {
    fed_ += count;
    if (stats_every_ == 0 || fed_ < next_report_) return;
    next_report_ += stats_every_;
    std::fprintf(stderr, "status packets=%llu viewers=%zu mem=%zuB\n",
                 static_cast<unsigned long long>(fed_),
                 fleet_.active_viewers(), fleet_.memory_bytes());
  }

  engine::PacketSource& inner_;
  monitor::MonitorFleet& fleet_;
  const std::size_t stats_every_;
  std::uint64_t fed_ = 0;
  std::uint64_t next_report_ = stats_every_;
};

int run_fleet_monitor(monitor::MonitorFleet& fleet,
                      engine::PacketSource& source, std::size_t stats_every) {
  StatusSource wrapped(source, fleet, stats_every);
  fleet.consume(wrapped);
  const monitor::FleetStats stats = fleet.finish();
  std::printf("%s\n", stats.to_string().c_str());
  if (source.error().has_value()) {
    std::fprintf(stderr, "source error: %s\n",
                 source.error()->message.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("wm_monitor", "continuous traffic-analysis monitor");
  cli.add_string("capture", "pcap/pcapng file to monitor", std::string());
  cli.add_double("speed", "replay pacing (1 = real time, 0 = unpaced)", 0.0);
  cli.add_int("fleet", "synthetic fleet mode: total sessions", 0);
  cli.add_int("concurrency", "fleet sessions in flight at once", 64);
  cli.add_int("questions", "fleet questions per session", 4);
  cli.add_int("max-mb", "viewer-state budget in MiB (0 = unlimited)", 0);
  cli.add_int("idle-sec", "viewer idle eviction timeout, seconds", 120);
  cli.add_int("window-sec", "evidence window, seconds", 10);
  cli.add_int("stats-every", "status line to stderr every N packets", 0);
  cli.add_int("threads", "monitor shards (>1 = sharded MonitorFleet)", 1);
  cli.add_bool("quiet", "suppress per-event output (evictions still print)");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  monitor::MonitorConfig config;
  config.evidence_window =
      util::Duration::seconds(cli.get_int("window-sec"));
  config.viewer_idle_timeout =
      util::Duration::seconds(cli.get_int("idle-sec"));
  config.flow_idle_timeout = config.viewer_idle_timeout;
  config.max_total_bytes =
      static_cast<std::size_t>(cli.get_int("max-mb")) * 1024 * 1024;

  LineSink sink(cli.get_bool("quiet"));
  const std::size_t stats_every =
      static_cast<std::size_t>(cli.get_int("stats-every"));
  const std::size_t fleet = static_cast<std::size_t>(cli.get_int("fleet"));
  const std::size_t threads =
      static_cast<std::size_t>(cli.get_int("threads") < 1
                                   ? 1
                                   : cli.get_int("threads"));

  monitor::FleetConfig fleet_config;
  fleet_config.shards = threads;
  fleet_config.monitor = config;

  try {
    if (fleet != 0) {
      monitor::WorkloadConfig workload;
      workload.sessions = fleet;
      workload.concurrency =
          static_cast<std::size_t>(cli.get_int("concurrency"));
      workload.questions_per_session =
          static_cast<std::size_t>(cli.get_int("questions"));
      core::IntervalClassifier classifier;
      classifier.fit(monitor::workload_calibration(workload));
      monitor::SyntheticFleetSource source(workload);
      std::fprintf(stderr, "fleet: %zu sessions, %zu packets, %zu threads\n",
                   workload.sessions, source.packets_total(), threads);
      if (threads > 1) {
        monitor::MonitorFleet mon(classifier, fleet_config, &sink);
        return run_fleet_monitor(mon, source, stats_every);
      }
      monitor::ContinuousMonitor mon(classifier, config, &sink);
      return run_monitor(mon, source, stats_every);
    }

    const std::string capture = cli.get_string("capture");
    if (capture.empty()) {
      std::fprintf(stderr, "pass --capture <file> or --fleet <n>\n%s",
                   cli.usage().c_str());
      return 1;
    }
    auto attack = simulated_calibration();
    auto opened = engine::open_capture(capture);
    if (!opened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", capture.c_str(),
                   opened.error().message.c_str());
      return 1;
    }
    const double speed = cli.get_double("speed");
    monitor::TimedReplaySource::Config pace;
    pace.speed = speed;
    std::unique_ptr<monitor::TimedReplaySource> paced;
    engine::PacketSource* source = opened.value().get();
    if (speed > 0.0) {
      paced = std::make_unique<monitor::TimedReplaySource>(*opened.value(),
                                                           pace);
      source = paced.get();
    }
    if (threads > 1) {
      monitor::MonitorFleet mon(attack->classifier(), fleet_config, &sink);
      return run_fleet_monitor(mon, *source, stats_every);
    }
    monitor::ContinuousMonitor mon(attack->classifier(), config, &sink);
    return run_monitor(mon, *source, stats_every);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wm_monitor: %s\n", e.what());
    return 1;
  }
}
