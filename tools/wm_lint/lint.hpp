// wm::lint — the project's invariant linter.
//
// The attack pipeline parses fully attacker-controlled bytes (pcap /
// pcapng framing, TLS records, state-JSON heuristics), and the zero-copy
// ingestion layer hands borrowed PacketViews and pooled buffers across
// threads. The safety rules that make that sound — who may store a
// borrowed view, which casts are allowed on capture bytes, which files
// may take a lock — were prose in DESIGN.md; this linter turns them into
// machine-checked diagnostics so every future PR is gated by `ctest -L
// lint` instead of reviewer vigilance.
//
// Rules (slugs usable in suppressions):
//   borrow     no borrowed-view members (PacketView / BytesView /
//              std::span / std::string_view) in records that are not
//              themselves views (name ending in "View" is exempt) —
//              DESIGN.md §3.3 ownership rule.
//   nodiscard  Result / Status types and Result-returning or
//              try_*/read_*/peek_* declarations carry [[nodiscard]];
//              known Result-returning calls are never bare statements.
//   cast       no reinterpret_cast outside the blessed util::bytes
//              bridging helpers (src/util/bytes.cpp).
//   stability  every obs metric registration names its Stability class
//              explicitly (src/ and include/ only).
//   mutex      no std::mutex declarations in hot-path files (engine /
//              spsc_ring / buffer_pool) outside suppressed sites.
//   suppression malformed (reason-less) or unused allow() comments.
//
// Suppressions: `// wm-lint: allow(<rule>): <reason>` on the offending
// line or the line directly above it. The reason is mandatory; an
// allow() that matches no finding is itself reported, so the suppression
// inventory can only shrink by deleting dead ones. A file may opt into
// the hot-path mutex rule with `// wm-lint: hot-path`.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "wm/util/result.hpp"

namespace wm::lint {

/// One finding, printed as "path:line: [rule] message".
struct Diagnostic {
  std::string rule;
  std::string path;
  std::size_t line = 0;  // 1-based
  std::string message;
  /// Set when --fix-nodiscard can mechanically repair this finding.
  bool fixable = false;

  [[nodiscard]] std::string to_string() const;
};

/// A file to scan: repo-relative path (forward slashes) plus content.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Options {
  /// Compute mechanical [[nodiscard]] insertions into LintResult::fixes.
  bool fix_nodiscard = false;
};

/// Machine-readable scan summary; the committed LINT_BASELINE.json is
/// exactly to_json() of a clean run, so future PRs diff suppression
/// counts instead of re-litigating them.
struct Stats {
  std::size_t files_scanned = 0;
  std::size_t lines_scanned = 0;
  std::map<std::string, std::size_t> diagnostics;   // rule -> count
  std::map<std::string, std::size_t> suppressions;  // rule -> used allows

  /// Canonical compact JSON (sorted keys, stable across runs).
  [[nodiscard]] std::string to_json() const;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  Stats stats;
  /// --fix-nodiscard: path -> rewritten content, only files that change.
  std::map<std::string, std::string> fixes;
};

/// The rule slugs allow() accepts.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Scan in-memory files. Pure: no filesystem access, deterministic
/// output ordering (input order, then line).
[[nodiscard]] LintResult run(const std::vector<SourceFile>& files,
                             const Options& options = {});

/// Read one on-disk file into a SourceFile (path recorded as given).
[[nodiscard]] Result<SourceFile> load_file(const std::string& fs_path,
                                           const std::string& repo_path);

}  // namespace wm::lint
