// wm_lint CLI — scans the repository tree and prints diagnostics.
//
// Usage:
//   wm_lint [--root DIR] [--stats] [--fix-nodiscard] [dir...]
//
//   --root DIR        repository root (default: current directory)
//   --stats           print the machine-readable Stats JSON to stdout
//                     (LINT_BASELINE.json is exactly this output)
//   --fix-nodiscard   rewrite files in place, inserting [[nodiscard]]
//                     at mechanically fixable findings
//   dir...            subtrees to scan, relative to --root
//                     (default: include src tests bench examples tools fuzz)
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O failure.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool scannable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Repo-relative path with forward slashes (rules match on prefixes).
std::string relative_key(const fs::path& file, const fs::path& root) {
  return fs::relative(file, root).generic_string();
}

wm::Status write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return wm::Status::failure(wm::ErrorCode::kIo,
                               "cannot open for write: " + path.string());
  }
  out << content;
  out.flush();
  if (!out) {
    return wm::Status::failure(wm::ErrorCode::kIo,
                               "short write: " + path.string());
  }
  return wm::Status::success();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  wm::lint::Options options;
  bool stats = false;
  std::vector<std::string> dirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "wm_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--fix-nodiscard") {
      options.fix_nodiscard = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wm_lint [--root DIR] [--stats] [--fix-nodiscard]"
                   " [dir...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wm_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) {
    dirs = {"include", "src", "tests", "bench", "examples", "tools", "fuzz"};
  }

  std::vector<wm::lint::SourceFile> files;
  std::vector<std::string> keys;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !scannable(entry.path())) continue;
      keys.push_back(relative_key(entry.path(), root));
    }
  }
  // Directory iteration order is filesystem-dependent; sort so the
  // diagnostic stream and --stats JSON are stable across machines.
  std::sort(keys.begin(), keys.end());
  files.reserve(keys.size());
  for (const std::string& key : keys) {
    auto loaded = wm::lint::load_file((root / key).string(), key);
    if (!loaded.ok()) {
      std::cerr << "wm_lint: " << loaded.error().to_string() << "\n";
      return 2;
    }
    files.push_back(std::move(loaded.value()));
  }

  const wm::lint::LintResult result = wm::lint::run(files, options);

  for (const auto& diagnostic : result.diagnostics) {
    std::cerr << diagnostic.to_string() << "\n";
  }
  for (const auto& [path, content] : result.fixes) {
    const wm::Status written = write_file(root / path, content);
    if (!written.ok()) {
      std::cerr << "wm_lint: " << written.error().to_string() << "\n";
      return 2;
    }
    std::cerr << "wm_lint: fixed " << path << "\n";
  }
  if (stats) {
    std::cout << result.stats.to_json() << "\n";
  }
  if (!result.diagnostics.empty()) {
    std::cerr << "wm_lint: " << result.diagnostics.size()
              << " diagnostic(s) in " << result.stats.files_scanned
              << " file(s)\n";
    return 1;
  }
  return 0;
}
