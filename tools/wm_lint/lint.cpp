#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

namespace wm::lint {

namespace {

// ---------------------------------------------------------------------
// Lexical pre-pass: split every line into code and comment text, with
// string/char literals (including R"( )" raw strings) blanked out of
// the code so rule patterns never fire inside literals, and comments
// separated out so suppressions are only honoured in real comments.
// ---------------------------------------------------------------------

struct LineInfo {
  std::string code;     // literals blanked to spaces, comments removed
  std::string comment;  // text after // (or inside /* */), if any
};

/// Lexer state that survives line boundaries: /* */ comments and
/// R"delim( ... )delim" raw strings can both span physical lines.
struct LexState {
  bool in_block = false;
  bool in_raw = false;
  std::string raw_closer;
};

/// Scan one physical line, splitting code from comment text.
LineInfo split_line(const std::string& line, LexState& state) {
  LineInfo out;
  out.code.reserve(line.size());
  std::size_t i = 0;
  if (state.in_raw) {
    const std::size_t end = line.find(state.raw_closer);
    if (end == std::string::npos) return out;  // whole line is literal
    i = end + state.raw_closer.size();
    state.in_raw = false;
  }
  while (i < line.size()) {
    if (state.in_block) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        state.in_block = false;
        i += 2;
        continue;
      }
      out.comment.push_back(line[i++]);
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      out.comment.append(line, i + 2, std::string::npos);
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      state.in_block = true;
      i += 2;
      continue;
    }
    if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"') {
      // Raw string literal: R"delim( ... )delim". Blank the contents;
      // if the closer is not on this line the literal continues onto
      // the following lines.
      std::size_t j = i + 2;
      std::string delim;
      while (j < line.size() && line[j] != '(') delim.push_back(line[j++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = line.find(closer, j);
      out.code.append("R\"\"");
      if (end == std::string::npos) {
        state.in_raw = true;
        state.raw_closer = closer;
        break;
      }
      i = end + closer.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.code.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\' && i + 1 < line.size()) {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      out.code.push_back(quote);
      continue;
    }
    out.code.push_back(c);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

struct Suppression {
  std::string rule;
  bool has_reason = false;
  bool used = false;
};

/// Parse allow directives — `wm-lint: allow(<rule>): <reason>` — out of
/// comment text. (Spelled with angle brackets here so this very comment
/// does not register as a suppression when the linter scans itself.)
std::vector<Suppression> parse_allows(const std::string& comment) {
  std::vector<Suppression> out;
  static const std::regex kAllow(
      R"(wm-lint:\s*allow\(([a-z][a-z-]*)\)(\s*:\s*(\S.*))?)");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    Suppression s;
    s.rule = (*it)[1].str();
    s.has_reason = (*it)[3].matched;
    out.push_back(std::move(s));
  }
  return out;
}

bool comment_tags_hot_path(const std::string& comment) {
  return comment.find("wm-lint: hot-path") != std::string::npos;
}

// ---------------------------------------------------------------------
// Per-file scan state
// ---------------------------------------------------------------------

struct FileScan {
  const SourceFile* file = nullptr;
  std::vector<std::string> raw;             // physical lines
  std::vector<LineInfo> lines;              // code/comment split
  // line index (0-based) -> suppressions declared on that line
  std::map<std::size_t, std::vector<Suppression>> allows;
  bool hot_path_tag = false;
};

FileScan prepare(const SourceFile& file) {
  FileScan scan;
  scan.file = &file;
  std::istringstream in(file.content);
  std::string line;
  LexState state;
  while (std::getline(in, line)) {
    scan.raw.push_back(line);
    scan.lines.push_back(split_line(line, state));
    const LineInfo& info = scan.lines.back();
    if (!info.comment.empty()) {
      auto found = parse_allows(info.comment);
      if (!found.empty()) {
        scan.allows[scan.lines.size() - 1] = std::move(found);
      }
      if (comment_tags_hot_path(info.comment)) scan.hot_path_tag = true;
    }
  }
  return scan;
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.rfind(prefix, 0) == 0;
}

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------
// Cross-file index
// ---------------------------------------------------------------------
//
// Single-file rules see one token stream; the sink-contract rule needs
// to relate a class *definition* (does it derive engine::EventSink? is
// it marked thread-safe?) to *construction sites* in another file. The
// runner therefore prepares every file first, merges what the repo-wide
// rules need into a RepoIndex, and hands that index to each per-file
// pass.

/// One class deriving from engine::EventSink, wherever it was defined.
struct SinkDef {
  std::string path;
  std::size_t line = 0;  // 0-based head line
  /// True when the definition carries `wm-lint: sink(threadsafe)` on
  /// its head line or in the comment block directly above — the
  /// author's signed statement that on_* may be called concurrently.
  bool threadsafe = false;
};

struct RepoIndex {
  /// EventSink subclasses by (unqualified) class name. A name defined
  /// in several files (test fixtures reuse names) is thread-safe only
  /// if every definition is marked.
  std::map<std::string, SinkDef> sinks;
};

bool comment_marks_threadsafe(const std::string& comment) {
  return comment.find("wm-lint: sink(threadsafe)") != std::string::npos;
}

/// Record every EventSink subclass a scan defines into `index`.
void index_sinks(const FileScan& scan, RepoIndex& index) {
  static const std::regex kSinkHead(
      R"((?:class|struct)\s+([A-Za-z_]\w*)[^;{=()]*:[^;{]*\bEventSink\b)");
  for (std::size_t i = 0; i < scan.lines.size(); ++i) {
    // A class head may wrap before its base list; joining one
    // continuation line covers `class Foo final\n : public EventSink`.
    std::string head = scan.lines[i].code;
    if (i + 1 < scan.lines.size() &&
        head.find('{') == std::string::npos &&
        head.find(';') == std::string::npos) {
      head += ' ';
      head += scan.lines[i + 1].code;
    }
    std::smatch m;
    if (!std::regex_search(head, m, kSinkHead)) continue;
    // Anchor to the line that names the class, not the continuation.
    if (scan.lines[i].code.find(m[1].str()) == std::string::npos) continue;
    bool threadsafe = comment_marks_threadsafe(scan.lines[i].comment);
    for (std::size_t j = i; j > 0 && !threadsafe; --j) {
      const std::string& code = scan.lines[j - 1].code;
      const bool comment_only = std::all_of(
          code.begin(), code.end(),
          [](unsigned char c) { return std::isspace(c); });
      if (!comment_only) break;
      threadsafe = comment_marks_threadsafe(scan.lines[j - 1].comment);
    }
    auto [it, inserted] =
        index.sinks.try_emplace(m[1].str(), SinkDef{scan.file->path, i, threadsafe});
    if (!inserted) it->second.threadsafe = it->second.threadsafe && threadsafe;
  }
}

RepoIndex build_index(const std::vector<FileScan>& scans) {
  RepoIndex index;
  for (const FileScan& scan : scans) index_sinks(scan, index);
  return index;
}

// ---------------------------------------------------------------------
// The rule engine
// ---------------------------------------------------------------------

class Linter {
 public:
  Linter(FileScan& scan, const RepoIndex& index, const Options& options,
         LintResult& result)
      : scan_(scan), index_(index), options_(options), result_(result) {}

  void run_rules() {
    const std::string& path = scan_.file->path;
    rule_cast(path);
    rule_mutex(path);
    rule_guarded(path);
    rule_atomic_order(path);
    rule_sink_contract(path);
    rule_borrow(path);
    rule_nodiscard(path);
    rule_stability(path);
    finish_suppressions();
  }

 private:
  /// Report unless an allow(rule) eats it: either inline on the same
  /// line, or anywhere in the contiguous comment block directly above.
  /// A finding inside a multi-line declaration walks up through the
  /// declaration's earlier lines first (a predecessor whose code does
  /// not end a statement), so an allow above the declaration's first
  /// line attaches no matter which physical line the rule fired on.
  void report(const std::string& rule, std::size_t index,
              const std::string& message, bool fixable = false) {
    std::vector<std::size_t> shield = {index};
    for (std::size_t j = index; j > 0;) {
      const std::size_t prev = j - 1;
      if (is_comment_only(prev) || continues_over(prev)) {
        shield.push_back(prev);
        j = prev;
        continue;
      }
      break;
    }
    for (const std::size_t line : shield) {
      auto it = scan_.allows.find(line);
      if (it == scan_.allows.end()) continue;
      for (Suppression& s : it->second) {
        if (s.rule != rule) continue;
        s.used = true;
        if (s.has_reason) {
          ++result_.stats.suppressions[rule];
          return;
        }
        diagnose(rule, index,
                 "suppressed without a reason — write `wm-lint: allow(" +
                     rule + "): <why>`");
        return;
      }
    }
    diagnose(rule, index, message, fixable);
  }

  void diagnose(const std::string& rule, std::size_t index,
                const std::string& message, bool fixable = false) {
    Diagnostic d;
    d.rule = rule;
    d.path = scan_.file->path;
    d.line = index + 1;
    d.message = message;
    d.fixable = fixable;
    ++result_.stats.diagnostics[rule];
    result_.diagnostics.push_back(std::move(d));
    if (fixable && options_.fix_nodiscard) fix_lines_.push_back(index);
  }

  [[nodiscard]] bool is_comment_only(std::size_t index) const {
    const std::string& code = scan_.lines[index].code;
    return std::all_of(code.begin(), code.end(),
                       [](unsigned char c) { return std::isspace(c); });
  }

  /// True when the code on `index` spills into the next line: it has
  /// content whose last character closes no statement or scope.
  [[nodiscard]] bool continues_over(std::size_t index) const {
    const std::string& code = scan_.lines[index].code;
    const std::size_t last = code.find_last_not_of(" \t");
    if (last == std::string::npos) return false;  // blank (comment-only)
    const char c = code[last];
    return c != ';' && c != '{' && c != '}';
  }

  // --- rule: cast ----------------------------------------------------
  // reinterpret_cast is how type confusion enters a parser of hostile
  // bytes; only the audited util::bytes bridging helpers may use it.
  void rule_cast(const std::string& path) {
    if (path == "src/util/bytes.cpp") return;  // the blessed bridge
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      if (scan_.lines[i].code.find("reinterpret_cast") != std::string::npos) {
        report("cast", i,
               "reinterpret_cast outside util::bytes — use read_exact/"
               "write_all/as_chars/as_bytes, or justify with allow(cast)");
      }
    }
  }

  /// The hot-path file set, shared by the mutex and atomic-order
  /// rules: the per-packet pipeline (engine, rings, pools) plus the
  /// surfaces its threads touch per event (fleet merge, metrics, log
  /// gate), plus anything tagged `wm-lint: hot-path`.
  [[nodiscard]] bool hot_path(const std::string& path) const {
    return scan_.hot_path_tag || path_contains(path, "core/engine/") ||
           path_contains(path, "util/spsc_ring") ||
           path_contains(path, "util/buffer_pool") ||
           path_contains(path, "obs/metrics") ||
           path_contains(path, "monitor/fleet") ||
           path_contains(path, "util/log");
  }

  // --- rule: mutex ---------------------------------------------------
  // Hot-path files moved to lock-free rings/pools in PR 3; a mutex
  // reappearing there is a performance regression until justified.
  void rule_mutex(const std::string& path) {
    if (!hot_path(path)) return;
    static const std::regex kMutexDecl(
        R"(\b(?:std::(?:recursive_|shared_|timed_)?mutex|(?:util::)?Mutex)\s+\w+)");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      if (std::regex_search(scan_.lines[i].code, kMutexDecl)) {
        report("mutex", i,
               "mutex declared in a hot-path file — use the lock-free "
               "primitives, or justify with allow(mutex)");
      }
    }
  }

  // --- rule: guarded -------------------------------------------------
  // A lock that -Wthread-safety cannot see, or that guards nothing it
  // can check, is a contract that exists only in the author's head.
  // Two obligations in library code (include/ + src/):
  //   (a) no raw std::mutex — declare util::Mutex so acquire/release
  //       carry capability attributes;
  //   (b) every Mutex member must have at least one WM_GUARDED_BY /
  //       WM_PT_GUARDED_BY sibling naming it (a pure condvar or
  //       serialization mutex states that with allow(guarded)).
  void rule_guarded(const std::string& path) {
    if (!starts_with(path, "include/") && !starts_with(path, "src/")) return;
    static const std::regex kRawMutex(
        R"(\bstd::(?:recursive_|shared_|timed_)?mutex\s+\w+)");
    static const std::regex kMutexMember(R"(\b(?:util::)?Mutex\s+(\w+)\s*;)");
    static const std::regex kCondvar(R"(\bstd::condition_variable\s+\w+)");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      if (std::regex_search(code, kRawMutex)) {
        report("guarded", i,
               "raw std::mutex is invisible to -Wthread-safety — declare "
               "util::Mutex (wm/util/thread_annotations.hpp), or justify "
               "with allow(guarded)");
      }
      if (std::regex_search(code, kCondvar)) {
        report("guarded", i,
               "std::condition_variable cannot wait on util::Mutex — use "
               "std::condition_variable_any with util::UniqueLock, or "
               "justify with allow(guarded)");
      }
      std::smatch m;
      if (std::regex_search(code, m, kMutexMember)) {
        if (!guards_anything(m[1].str())) {
          report("guarded", i,
                 "Mutex `" + m[1].str() +
                     "` has no WM_GUARDED_BY sibling — annotate what it "
                     "protects, or state why not with allow(guarded)");
        }
      }
    }
  }

  /// Does any WM_GUARDED_BY / WM_PT_GUARDED_BY in this file name
  /// `mutex_name`? (Per file: guarded members always live beside their
  /// lock in the same class.)
  [[nodiscard]] bool guards_anything(const std::string& mutex_name) const {
    const std::regex guarded(R"(WM_(?:PT_)?GUARDED_BY\(\s*)" + mutex_name +
                             R"(\s*\))");
    for (const LineInfo& info : scan_.lines) {
      if (std::regex_search(info.code, guarded)) return true;
    }
    return false;
  }

  // --- rule: atomic-order --------------------------------------------
  // A bare load()/store()/fetch_*() defaults to seq_cst: correct, but
  // silently so — nobody can tell a deliberate fence from an accident,
  // and the hot path pays for the accident. Every atomic access in a
  // hot-path file must name its std::memory_order.
  void rule_atomic_order(const std::string& path) {
    if (!hot_path(path)) return;
    static const std::regex kAtomicCall(
        R"((?:\.|->)(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\()");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                          kAtomicCall);
           it != std::sregex_iterator(); ++it) {
        const std::string args = collect_call_args(
            i, static_cast<std::size_t>(it->position(0) + it->length(0)) - 1);
        if (args.find("memory_order") == std::string::npos) {
          report("atomic-order", i,
                 "atomic " + (*it)[1].str() +
                     "() without an explicit std::memory_order — name the "
                     "ordering (and say why in a comment), or justify with "
                     "allow(atomic-order)");
        }
      }
    }
  }

  // --- rule: sink-contract -------------------------------------------
  // events.hpp promises sinks single-threaded delivery — a promise the
  // fleet keeps only through its serialization points. A sink that is
  // *constructed inside fleet.cpp* is wired straight into worker
  // threads, so its class must carry the author's thread-safety mark,
  // `wm-lint: sink(threadsafe)`, on (or directly above) its head line.
  // Cross-file: definitions come from the repo-wide index.
  void rule_sink_contract(const std::string& path) {
    if (!path_contains(path, "monitor/fleet")) return;
    static const std::regex kConstruct(
        R"((?:\bnew\s+|make_unique<\s*)([A-Za-z_][\w:]*))");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                          kConstruct);
           it != std::sregex_iterator(); ++it) {
        std::string name = (*it)[1].str();
        const std::size_t colons = name.rfind("::");
        if (colons != std::string::npos) name = name.substr(colons + 2);
        const auto sink = index_.sinks.find(name);
        if (sink == index_.sinks.end() || sink->second.threadsafe) continue;
        report("sink-contract", i,
               "sink `" + name + "` (" + sink->second.path + ":" +
                   std::to_string(sink->second.line + 1) +
                   ") is constructed inside the fleet but not marked "
                   "`wm-lint: sink(threadsafe)` — prove the sink tolerates "
                   "concurrent on_* calls and mark its class head, or "
                   "justify here with allow(sink-contract)");
      }
    }
  }

  // --- rule: borrow --------------------------------------------------
  // DESIGN.md §3.3: borrowed views are valid only until the producer's
  // next read. A record that stores one outlives that window unless it
  // is itself a view type (name ends in "View") or the site documents
  // why the lifetime is bounded.
  void rule_borrow(const std::string& path) {
    if (!starts_with(path, "include/") && !starts_with(path, "src/")) return;
    static const std::regex kRecordHead(
        R"(^\s*(?:template\s*<[^;{]*>\s*)?(?:class|struct)\s+(?:\[\[nodiscard\]\]\s*)?([A-Za-z_][\w:]*))");
    static const std::regex kEnumHead(R"(^\s*enum\b)");
    static const std::regex kMember(
        R"(^\s*(?:mutable\s+)?(?:const\s+)?((?:net::|util::|std::|wm::)*(?:PacketView|BytesView|span<[^;()]*>|string_view))\s+(\w+)\s*(?:=[^;]*|\{[^;]*\})?;)");

    struct Record {
      std::string name;
      int body_depth = 0;
    };
    std::vector<Record> stack;
    std::string pending;
    int depth = 0;

    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      std::smatch m;
      if (!std::regex_search(code, kEnumHead) &&
          std::regex_search(code, m, kRecordHead)) {
        std::string name = m[1].str();
        const std::size_t colons = name.rfind("::");
        if (colons != std::string::npos) name = name.substr(colons + 2);
        pending = name;
      }
      // Member check before brace bookkeeping so a member on the same
      // line as a brace still sees the enclosing record. Thread-safety
      // annotations are stripped first: `BytesView v_ WM_GUARDED_BY(m);`
      // is still a stored borrow, and the annotation's parens must not
      // trip the declaration/function discriminator below.
      static const std::regex kAnnotation(R"(\s*WM_\w+\([^()]*\))");
      const std::string member_code = std::regex_replace(code, kAnnotation, "");
      if (!stack.empty() && depth == stack.back().body_depth &&
          member_code.find('(') == std::string::npos) {
        std::smatch mm;
        if (std::regex_search(member_code, mm, kMember)) {
          const std::string& record = stack.back().name;
          const bool is_view_type = record.size() >= 4 &&
              record.compare(record.size() - 4, 4, "View") == 0;
          if (!is_view_type) {
            report("borrow", i,
                   "borrowed view member `" + mm[2].str() + "` (" +
                       mm[1].str() + ") stored in non-view type `" + record +
                       "` — own the bytes, or justify with allow(borrow)");
          }
        }
      }
      for (const char c : code) {
        if (c == ';' && depth == 0) pending.clear();
        if (c == '{') {
          ++depth;
          if (!pending.empty()) {
            stack.push_back({pending, depth});
            pending.clear();
          }
        } else if (c == '}') {
          if (!stack.empty() && stack.back().body_depth == depth) {
            stack.pop_back();
          }
          --depth;
        }
      }
    }
  }

  // --- rule: nodiscard -----------------------------------------------
  void rule_nodiscard(const std::string& path) {
    // (a) Result/Status type heads must carry the class attribute, so
    // the compiler flags every discarded call, everywhere.
    static const std::regex kResultHead(
        R"(^\s*(?:template\s*<[^;{]*>\s*)?(class|struct)\s+(Result|Status)\b[^;]*$)");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      std::smatch m;
      if (std::regex_search(code, m, kResultHead) &&
          code.find("[[nodiscard]]") == std::string::npos) {
        report("nodiscard", i,
               m[2].str() + " must be declared `" + m[1].str() +
                   " [[nodiscard]] " + m[2].str() + "`",
               /*fixable=*/true);
      }
    }

    // (b)+(c) declarations in public headers: Result/Status returners
    // and try_*/read_*/peek_* parser APIs.
    if (!starts_with(path, "include/")) {
      rule_nodiscard_calls();
      return;
    }
    static const std::regex kDecl(
        R"(^\s*(?:(?:static|virtual|inline|constexpr|explicit)\s+)*((?:wm::|util::)?Result<[\w:<>,\s\*&]*>|(?:wm::|util::)?Status)\s+[A-Za-z_]\w*\s*\()");
    static const std::regex kTryRead(
        R"(^\s*(?:(?:static|virtual|inline|constexpr|explicit)\s+)*[A-Za-z_][\w:<>,\s\*&]*[\s&\*>]((?:try_|read_|peek_)\w+)\s*\()");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      if (code.find("[[nodiscard]]") != std::string::npos) continue;
      if (i > 0 &&
          scan_.lines[i - 1].code.find("[[nodiscard]]") != std::string::npos) {
        continue;
      }
      if (code.find("friend") != std::string::npos) continue;
      if (code.find("using") != std::string::npos) continue;
      // A line with `return` (or a member call) is a use site, not a
      // declaration; the class attribute on Result/Status covers those.
      if (code.find("return") != std::string::npos) continue;
      std::smatch m;
      if (std::regex_search(code, m, kDecl)) {
        report("nodiscard", i,
               "declaration returning " + m[1].str() +
                   " must be [[nodiscard]]",
               /*fixable=*/true);
        continue;
      }
      if (std::regex_search(code, m, kTryRead) &&
          !std::regex_search(code, std::regex(R"(^\s*(?:virtual\s+)?void\b)"))) {
        // `obj.try_pop(x)` / `ptr->try_pop(x)` are calls, not decls.
        const auto name_at = static_cast<std::size_t>(m.position(1));
        const bool member_call =
            (name_at >= 1 && code[name_at - 1] == '.') ||
            (name_at >= 2 && code[name_at - 2] == '-' &&
             code[name_at - 1] == '>');
        if (member_call) continue;
        report("nodiscard", i,
               "parser API `" + m[1].str() + "` must be [[nodiscard]]",
               /*fixable=*/true);
      }
    }
    rule_nodiscard_calls();
  }

  // Known entry points whose return value IS the error/progress
  // channel, called as bare statements: open_capture/infer_capture
  // drop a Result, a bare try_inject silently loses the packet on a
  // full tap, a bare read_batch cannot see end-of-stream. Belt-and-
  // braces over the [[nodiscard]] attributes (which only warn) — the
  // lint run fails hard.
  void rule_nodiscard_calls() {
    static const std::regex kBareCall(
        R"(^\s*(?:[\w:]+(?:\.|->))?(open_capture|infer_capture|try_inject|read_batch)\s*\()");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      std::smatch m;
      if (!std::regex_search(code, m, kBareCall)) continue;
      if (code.find('=') != std::string::npos) continue;
      if (code.find("return") != std::string::npos) continue;
      if (code.find("void") != std::string::npos) continue;
      report("nodiscard", i,
             "result of " + m[1].str() + "() discarded — bind it to a "
             "named value and consume it");
    }
  }

  // --- rule: stability -----------------------------------------------
  // Snapshot determinism (stable sections byte-identical across shard
  // counts) only holds when every registration states which section the
  // metric belongs to; a defaulted argument hides that decision.
  void rule_stability(const std::string& path) {
    if (!starts_with(path, "include/") && !starts_with(path, "src/")) return;
    if (path_contains(path, "/obs/")) return;  // the registry itself
    static const std::regex kRegister(R"((->|\.)\s*(counter|histogram)\s*\()");
    for (std::size_t i = 0; i < scan_.lines.size(); ++i) {
      const std::string& code = scan_.lines[i].code;
      for (auto it = std::sregex_iterator(code.begin(), code.end(), kRegister);
           it != std::sregex_iterator(); ++it) {
        const std::string args = collect_call_args(
            i, static_cast<std::size_t>(it->position(0) + it->length(0)) - 1);
        std::string lowered = args;
        std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                       [](unsigned char c) {
                         return static_cast<char>(std::tolower(c));
                       });
        if (lowered.find("stability") == std::string::npos) {
          report("stability", i,
                 "obs metric registered without an explicit Stability "
                 "class — pass obs::Stability::{kStable,kSharded,kVolatile}");
        }
      }
    }
  }

  /// Concatenate the argument text of a call whose opening paren sits at
  /// (line, column), following the balance across up to 40 lines.
  [[nodiscard]] std::string collect_call_args(std::size_t line,
                                              std::size_t column) const {
    std::string args;
    int balance = 0;
    for (std::size_t i = line; i < scan_.lines.size() && i < line + 40; ++i) {
      const std::string& code = scan_.lines[i].code;
      for (std::size_t j = i == line ? column : 0; j < code.size(); ++j) {
        const char c = code[j];
        if (c == '(') ++balance;
        if (c == ')') {
          --balance;
          if (balance == 0) return args;
        }
        args.push_back(c);
      }
      args.push_back(' ');
    }
    return args;
  }

  // --- rule: suppression ---------------------------------------------
  // Every allow() must earn its keep: unused ones rot into lies.
  void finish_suppressions() {
    for (auto& [line, list] : scan_.allows) {
      for (Suppression& s : list) {
        const bool known =
            std::find(rule_names().begin(), rule_names().end(), s.rule) !=
            rule_names().end();
        if (!known) {
          diagnose("suppression", line,
                   "allow(" + s.rule + ") names no known rule");
        } else if (!s.used) {
          diagnose("suppression", line,
                   "allow(" + s.rule + ") matches no finding — delete it");
        }
      }
    }
  }

 public:
  /// Apply the queued mechanical [[nodiscard]] insertions.
  void apply_fixes() {
    if (fix_lines_.empty()) return;
    static const std::regex kTypeHead(R"(\b(class|struct)\s+)");
    for (const std::size_t index : fix_lines_) {
      std::string& line = scan_.raw[index];
      std::smatch m;
      if (std::regex_search(line, m, kTypeHead)) {
        // `class Result` -> `class [[nodiscard]] Result`
        line.insert(static_cast<std::size_t>(m.position(0) + m.length(0)),
                    "[[nodiscard]] ");
      } else {
        const std::size_t indent = line.find_first_not_of(" \t");
        line.insert(indent == std::string::npos ? 0 : indent,
                    "[[nodiscard]] ");
      }
    }
    std::string rebuilt;
    for (const std::string& line : scan_.raw) {
      rebuilt += line;
      rebuilt += '\n';
    }
    result_.fixes[scan_.file->path] = std::move(rebuilt);
  }

 private:
  FileScan& scan_;
  const RepoIndex& index_;
  const Options& options_;
  LintResult& result_;
  std::vector<std::size_t> fix_lines_;
};

}  // namespace

std::string Diagnostic::to_string() const {
  return path + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      "borrow",  "nodiscard",    "cast",          "stability", "mutex",
      "guarded", "atomic-order", "sink-contract", "suppression"};
  return kNames;
}

std::string Stats::to_json() const {
  std::ostringstream out;
  const auto dump_map = [&out](const char* key,
                               const std::map<std::string, std::size_t>& map) {
    out << '"' << key << "\":{";
    bool first = true;
    for (const auto& [name, count] : map) {
      if (!first) out << ',';
      first = false;
      out << '"' << name << "\":" << count;
    }
    out << '}';
  };
  out << "{";
  dump_map("diagnostics", diagnostics);
  out << ",\"files_scanned\":" << files_scanned;
  out << ",\"lines_scanned\":" << lines_scanned;
  out << ",\"rules\":[";
  std::vector<std::string> names = rule_names();
  std::sort(names.begin(), names.end());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << names[i] << '"';
  }
  out << "],";
  dump_map("suppressions", suppressions);
  out << "}";
  return out.str();
}

LintResult run(const std::vector<SourceFile>& files, const Options& options) {
  LintResult result;
  // Cross-file mode: prepare every file up front, merge what repo-wide
  // rules need into an index, then run the per-file passes against it.
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const SourceFile& file : files) {
    scans.push_back(prepare(file));
    ++result.stats.files_scanned;
    result.stats.lines_scanned += scans.back().lines.size();
  }
  const RepoIndex index = build_index(scans);
  for (FileScan& scan : scans) {
    Linter linter(scan, index, options, result);
    linter.run_rules();
    if (options.fix_nodiscard) linter.apply_fixes();
  }
  return result;
}

Result<SourceFile> load_file(const std::string& fs_path,
                             const std::string& repo_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) {
    return Error{ErrorCode::kNotFound, "cannot open " + fs_path};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Error{ErrorCode::kIo, "read failed for " + fs_path};
  }
  return SourceFile{repo_path, buffer.str()};
}

}  // namespace wm::lint
